package loadgen

// The coordinator-federation chaos scenarios ("coord" surface): K=3
// replicated coordinators gossiping over real loopback HTTP while the
// campaign injects the control-plane failures the federation must absorb —
// a network partition that heals, a coordinator crash with a
// fresh-incarnation restart, and a gossip storm of connection resets, 5xx
// bursts, and duplicated/stale frames. Every scenario steps gossip rounds
// explicitly (RunRound) instead of running wall-clock probe loops, so a
// replayed seed reproduces the exact exchange order. The standing
// invariants: Assign never blocks or comes back empty on any coordinator at
// any point, quorum loss is reported as degraded (and only then), and after
// the fault clears the cluster converges to one global coverage view with
// per-region balance spread <= 1 and a focus schedule bit-identical to a
// same-anchor single-coordinator baseline.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	"encore/internal/api"
	"encore/internal/coordfed"
	"encore/internal/core"
	"encore/internal/faultinject"
	"encore/internal/geo"
	"encore/internal/pipeline"
	"encore/internal/scheduler"
	"encore/internal/wire"
)

// coordWindow keeps the focus on the script-only pattern for the whole
// campaign, so every Firefox pick exercises the globally-balanced path.
const coordWindow = 1000 * time.Hour

// coordRegions assigns each of the three coordinators its own disjoint
// client population.
var coordRegions = []geo.CountryCode{"US", "PK", "CN"}

// coordTaskSet is the balance probe: one script-only focus pattern plus five
// image patterns every family can measure.
func coordTaskSet() *pipeline.TaskSet {
	ts := pipeline.NewTaskSet()
	ts.Add(pipeline.Candidate{PatternKey: "domain:aaa-script-only.org", Type: core.TaskScript,
		TargetURL: "http://aaa-script-only.org/app.js", Strict: true})
	for i := 1; i < 6; i++ {
		d := fmt.Sprintf("balance%02d.example.org", i)
		ts.Add(pipeline.Candidate{PatternKey: "domain:" + d, Type: core.TaskImage,
			TargetURL: "http://" + d + "/favicon.ico", Strict: true})
	}
	return ts
}

func newCoordScheduler(seed uint64) *scheduler.Scheduler {
	cfg := scheduler.DefaultConfig()
	cfg.QuorumWindow = coordWindow
	cfg.Seed = seed
	return scheduler.New(coordTaskSet(), cfg)
}

// coordNode is one coordinator in a chaos cluster: scheduler, federation,
// and the loopback server peers gossip with.
type coordNode struct {
	origin string
	host   string
	sched  *scheduler.Scheduler
	fed    *coordfed.Federation
	srv    *httptest.Server
}

func (n *coordNode) stop() {
	if n.fed != nil {
		n.fed.Close()
	}
	if n.srv != nil {
		n.srv.Close()
	}
}

// newCoordCluster builds k fully-meshed coordinators. transportFor (optional)
// supplies each node's outbound transport — the fault injection point — and
// receives the node's index and its own listen host.
func newCoordCluster(seed uint64, k int, transportFor func(i int, host string) http.RoundTripper) ([]*coordNode, error) {
	nodes := make([]*coordNode, k)
	for i := range nodes {
		nodes[i] = &coordNode{origin: fmt.Sprintf("c%d", i), sched: newCoordScheduler(seed + uint64(i))}
		n := nodes[i]
		n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n.fed.Handler()(w, r)
		}))
		n.host = n.srv.Listener.Addr().String()
	}
	for i, n := range nodes {
		var peers []string
		for j, p := range nodes {
			if j != i {
				peers = append(peers, p.srv.URL)
			}
		}
		var transport http.RoundTripper
		if transportFor != nil {
			transport = transportFor(i, n.host)
		}
		fed, err := coordfed.New(coordfed.Config{
			Origin:    n.origin,
			Scheduler: n.sched,
			Peers:     peers,
			Transport: transport,
			Timeout:   2 * time.Second,
			Seed:      seed ^ uint64(i+1),
		})
		if err != nil {
			return nil, err
		}
		n.fed = fed
	}
	return nodes, nil
}

func stopCoordCluster(nodes []*coordNode) {
	for _, n := range nodes {
		if n != nil {
			n.stop()
		}
	}
}

// coordAssign drives one pick and enforces the never-blocks invariant.
func coordAssign(n *coordNode, region geo.CountryCode, at time.Time) error {
	client := scheduler.ClientInfo{Region: region, Browser: core.BrowserFirefox, ExpectedDwellSeconds: 5}
	if tasks := n.sched.Assign(client, at); len(tasks) == 0 {
		return fmt.Errorf("coordinator %s returned no tasks for a %s client: Assign blocked", n.origin, region)
	}
	return nil
}

// coordConverge steps the given number of full gossip rounds (every live node
// exchanges with every peer once per round).
func coordConverge(ctx context.Context, nodes []*coordNode, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			if n != nil && n.fed != nil {
				n.fed.RunRound(ctx)
			}
		}
	}
}

// coordViewsAgree verifies every node reports the identical global count for
// every (pattern, region) cell.
func coordViewsAgree(nodes []*coordNode) error {
	keys := nodes[0].sched.PatternKeys()
	for _, key := range keys {
		for _, region := range coordRegions {
			want := nodes[0].sched.GlobalAssignments(key, region)
			for _, n := range nodes[1:] {
				if got := n.sched.GlobalAssignments(key, region); got != want {
					return fmt.Errorf("divergent views: %s sees global[%s/%s]=%d, %s sees %d",
						n.origin, key, region, got, nodes[0].origin, want)
				}
			}
		}
	}
	return nil
}

// coordTotal sums one node's global view over every pattern and region.
func coordTotal(n *coordNode) int {
	total := 0
	for _, key := range n.sched.PatternKeys() {
		for _, region := range coordRegions {
			total += n.sched.GlobalAssignments(key, region)
		}
	}
	return total
}

// coordCheckBalance drives picks serialized picks in converged lockstep and
// verifies the global per-region spread over the image patterns stays <= 1.
func coordCheckBalance(ctx context.Context, nodes []*coordNode, at time.Time) error {
	for pick := 0; pick < 18; pick++ {
		n := nodes[pick%len(nodes)]
		region := coordRegions[pick%len(coordRegions)]
		if err := coordAssign(n, region, at); err != nil {
			return err
		}
		coordConverge(ctx, nodes, 1)
	}
	if err := coordViewsAgree(nodes); err != nil {
		return err
	}
	keys := nodes[0].sched.PatternKeys()
	for _, region := range coordRegions {
		min, max := -1, -1
		for _, key := range keys[1:] { // keys[0] is the script-only focus pattern
			c := nodes[0].sched.GlobalAssignments(key, region)
			if min == -1 || c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			return fmt.Errorf("global balance spread in %s is %d (min=%d max=%d), want <= 1", region, max-min, min, max)
		}
	}
	return nil
}

// coordCheckFocusSchedule verifies every node's focus rotation is
// bit-identical to a single-coordinator baseline anchored at the same first
// assignment.
func coordCheckFocusSchedule(nodes []*coordNode, anchor time.Time) error {
	for _, n := range nodes {
		if a := n.sched.Anchor(); a != anchor.UnixNano() {
			return fmt.Errorf("%s anchor %d, want the cluster minimum %d", n.origin, a, anchor.UnixNano())
		}
	}
	baseline := newCoordScheduler(424242)
	baseline.Assign(scheduler.ClientInfo{Region: "US", Browser: core.BrowserFirefox, ExpectedDwellSeconds: 5}, anchor)
	keys := baseline.PatternKeys()
	for i := 0; i < 3*len(keys); i++ {
		tm := anchor.Add(time.Duration(i)*coordWindow + coordWindow/2)
		want := baseline.FocusPattern(tm)
		for _, n := range nodes {
			if got := n.sched.FocusPattern(tm); got != want {
				return fmt.Errorf("%s focus schedule diverged from baseline at window %d: %q vs %q", n.origin, i, got, want)
			}
		}
	}
	return nil
}

// scenarioCoordPartitionHeal splits one coordinator away from the other two
// mid-campaign. The isolated node must keep assigning and report degraded
// (its quorum is gone); the majority side must not. After the partition
// heals, the cluster converges and the balance and schedule invariants hold.
func scenarioCoordPartitionHeal(ctx *chaosCtx) error {
	partition := faultinject.NewPartition()
	nodes, err := newCoordCluster(ctx.seed, 3, func(i int, host string) http.RoundTripper {
		return partition.Link(host, nil)
	})
	if err != nil {
		return err
	}
	defer stopCoordCluster(nodes)
	bg := context.Background()

	t0 := chaosStart
	if err := coordAssign(nodes[0], "US", t0); err != nil {
		return err
	}
	for i, n := range nodes {
		for p := 0; p < 30; p++ {
			if err := coordAssign(n, coordRegions[i], t0.Add(time.Duration(p+1)*time.Millisecond)); err != nil {
				return err
			}
		}
	}
	coordConverge(bg, nodes, 4)
	if err := coordViewsAgree(nodes); err != nil {
		return fmt.Errorf("pre-partition: %w", err)
	}

	// Partition: c0 alone vs {c1, c2}.
	partition.Isolate([]string{nodes[0].host}, []string{nodes[1].host, nodes[2].host})
	for i, n := range nodes {
		for p := 0; p < 15; p++ {
			if err := coordAssign(n, coordRegions[i], t0.Add(time.Second)); err != nil {
				return fmt.Errorf("during partition: %w", err)
			}
		}
	}
	coordConverge(bg, nodes, 4) // every c0 exchange fails; c1<->c2 keep converging
	if partition.Severed() == 0 {
		return fmt.Errorf("partition injected no faults: Link not on the gossip path")
	}
	if !nodes[0].fed.Degraded() {
		return fmt.Errorf("isolated coordinator did not report degraded with both peers unreachable")
	}
	if nodes[1].fed.Degraded() || nodes[2].fed.Degraded() {
		return fmt.Errorf("majority-side coordinator reported degraded while holding quorum")
	}

	// Heal and converge: the isolated side's counts flow back in.
	partition.Heal()
	coordConverge(bg, nodes, 6)
	if err := coordViewsAgree(nodes); err != nil {
		return fmt.Errorf("post-heal: %w", err)
	}
	if nodes[0].fed.Degraded() {
		return fmt.Errorf("coordinator still degraded after the partition healed")
	}
	if err := coordCheckBalance(bg, nodes, t0.Add(2*time.Second)); err != nil {
		return fmt.Errorf("post-heal: %w", err)
	}
	return coordCheckFocusSchedule(nodes, t0)
}

// scenarioCoordCrashRestart kills one coordinator mid-campaign and restarts
// it on the same address with an empty scheduler under a fresh origin (the
// incarnation rule). The crashed node's pre-crash counts must survive at its
// peers and flow back to the replacement; nothing is lost and nobody blocks.
func scenarioCoordCrashRestart(ctx *chaosCtx) error {
	nodes, err := newCoordCluster(ctx.seed, 3, nil)
	if err != nil {
		return err
	}
	defer stopCoordCluster(nodes)
	bg := context.Background()

	t0 := chaosStart
	if err := coordAssign(nodes[0], "US", t0); err != nil {
		return err
	}
	for i, n := range nodes {
		for p := 0; p < 30; p++ {
			if err := coordAssign(n, coordRegions[i], t0.Add(time.Duration(p+1)*time.Millisecond)); err != nil {
				return err
			}
		}
	}
	coordConverge(bg, nodes, 4)
	if err := coordViewsAgree(nodes); err != nil {
		return fmt.Errorf("pre-crash: %w", err)
	}
	preCrashTotal := coordTotal(nodes[0])

	// Crash c1. The survivors keep assigning and mark the peer down without
	// going degraded (2 of 3 is still a quorum).
	crashedHost := nodes[1].host
	crashedPeers := []string{nodes[0].srv.URL, nodes[2].srv.URL}
	nodes[1].stop()
	nodes[1] = nil
	survivors := []*coordNode{nodes[0], nodes[2]}
	for i, n := range survivors {
		for p := 0; p < 12; p++ {
			if err := coordAssign(n, coordRegions[2*i], t0.Add(time.Second)); err != nil {
				return fmt.Errorf("after crash: %w", err)
			}
		}
	}
	coordConverge(bg, survivors, 4)
	if err := coordViewsAgree(survivors); err != nil {
		return fmt.Errorf("survivors: %w", err)
	}
	if survivors[0].fed.Degraded() || survivors[1].fed.Degraded() {
		return fmt.Errorf("survivor reported degraded with 2 of 3 coordinators reachable")
	}
	downSeen := false
	for _, ph := range survivors[0].fed.PeerHealth(time.Now()) {
		if ph.State != coordfed.PeerAlive {
			downSeen = true
		}
	}
	if !downSeen {
		return fmt.Errorf("survivor never marked the crashed peer suspect/dead")
	}

	// Restart on the same address: fresh scheduler, NEW origin. The old
	// origin's counts merge back from the peers as remote state.
	ln, err := relistenCoord(crashedHost)
	if err != nil {
		return err
	}
	restarted := &coordNode{origin: "c1b", host: crashedHost, sched: newCoordScheduler(ctx.seed + 99)}
	restarted.srv = httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		restarted.fed.Handler()(w, r)
	}))
	restarted.srv.Listener.Close()
	restarted.srv.Listener = ln
	restarted.srv.Start()
	fed, err := coordfed.New(coordfed.Config{
		Origin: restarted.origin, Scheduler: restarted.sched, Peers: crashedPeers,
		Timeout: 2 * time.Second, Seed: ctx.seed ^ 0xbeef,
	})
	if err != nil {
		return err
	}
	restarted.fed = fed
	nodes[1] = restarted
	defer restarted.stop()

	for p := 0; p < 12; p++ {
		if err := coordAssign(restarted, coordRegions[1], t0.Add(2*time.Second)); err != nil {
			return fmt.Errorf("after restart: %w", err)
		}
	}
	coordConverge(bg, nodes, 6)
	if err := coordViewsAgree(nodes); err != nil {
		return fmt.Errorf("post-restart: %w", err)
	}
	if got := coordTotal(restarted); got < preCrashTotal {
		return fmt.Errorf("restart lost coverage: replacement sees %d assignments, %d existed before the crash", got, preCrashTotal)
	}
	if err := coordCheckBalance(bg, nodes, t0.Add(3*time.Second)); err != nil {
		return fmt.Errorf("post-restart: %w", err)
	}
	return coordCheckFocusSchedule(nodes, t0)
}

// relistenCoord rebinds a just-released loopback address, absorbing the OS
// briefly holding the port.
func relistenCoord(addr string) (net.Listener, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("rebinding crashed coordinator address %s: %w", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// scenarioCoordGossipStorm drives gossip through a lossy transport (30%
// connection resets plus a 5xx burst) and replays duplicated and stale
// frames directly at a handler. The CRDT merge must shrug all of it off:
// convergence despite the resets, byte-identical views after duplicate
// delivery, and no regression from stale state.
func scenarioCoordGossipStorm(ctx *chaosCtx) error {
	rts := make([]*faultinject.RoundTripper, 3)
	nodes, err := newCoordCluster(ctx.seed, 3, func(i int, host string) http.RoundTripper {
		rts[i] = faultinject.NewRoundTripper(nil, faultinject.NetFaults{
			Seed:      ctx.seed ^ uint64(i+1),
			ResetProb: 0.3,
		})
		return rts[i]
	})
	if err != nil {
		return err
	}
	defer stopCoordCluster(nodes)
	bg := context.Background()

	t0 := chaosStart
	if err := coordAssign(nodes[0], "US", t0); err != nil {
		return err
	}
	for i, n := range nodes {
		for p := 0; p < 25; p++ {
			if err := coordAssign(n, coordRegions[i], t0.Add(time.Duration(p+1)*time.Millisecond)); err != nil {
				return err
			}
		}
	}

	// A stale frame captured mid-campaign, replayed after convergence.
	staleState := nodes[0].sched.LocalCoverage()
	staleRegions := make([]wire.GossipRegion, len(staleState.Regions))
	for i, rc := range staleState.Regions {
		staleRegions[i] = wire.GossipRegion{Region: rc.Region, Counts: rc.Counts}
	}
	staleFrame := wire.AppendGossipFrame(nil, &wire.Gossip{
		From:         nodes[0].origin,
		Anchor:       nodes[0].sched.Anchor(),
		ScheduleHash: nodes[0].sched.ScheduleHash(),
		Deltas:       []wire.GossipDelta{{Origin: nodes[0].origin, Version: staleState.Version, Regions: staleRegions}},
	})

	// A 5xx burst on top of the resets, then enough rounds to converge
	// through the lossy transport.
	rts[0].FailNext(5, http.StatusServiceUnavailable, "")
	coordConverge(bg, nodes, 12)
	if err := coordViewsAgree(nodes); err != nil {
		return fmt.Errorf("storm prevented convergence: %w", err)
	}
	st := nodes[0].fed.Stats()
	if st.Failures == 0 {
		return fmt.Errorf("storm injected no exchange failures: faults not on the gossip path")
	}
	if st.MergedDeltas == 0 || st.Served == 0 {
		return fmt.Errorf("no gossip flowed despite convergence: stats %+v", st)
	}

	// Duplicate + stale delivery: replay the mid-campaign frame at c1 twice.
	// The G-counter max-merge must treat it as a no-op.
	before := coordTotal(nodes[1])
	for i := 0; i < 2; i++ {
		resp, err := http.Post(nodes[1].srv.URL+api.V2GossipPath, wire.ContentTypeGossip, bytes.NewReader(staleFrame))
		if err != nil {
			return fmt.Errorf("replaying stale frame: %w", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("stale frame replay rejected with %d, want 200 no-op merge", resp.StatusCode)
		}
	}
	if after := coordTotal(nodes[1]); after != before {
		return fmt.Errorf("stale gossip replay changed the coverage view: %d -> %d", before, after)
	}
	if err := coordViewsAgree(nodes); err != nil {
		return fmt.Errorf("after stale replay: %w", err)
	}
	return coordCheckFocusSchedule(nodes, t0)
}
