// Package loadgen drives a full in-process Encore deployment — coordination
// server, client simulator, and collection server — with K concurrent
// simulated clients and reports the achieved ingest throughput. The paper's
// collection server must absorb beacon submissions from clients mid-page-view
// at deployment scale (§5.5, §8); loadgen is the harness that measures
// whether the sharded stores, sharded abuse guard, and batched async ingest
// queue actually deliver that headroom on a given machine.
package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	apiclient "encore/internal/api/client"
	"encore/internal/clientsim"
	"encore/internal/collectserver"
	"encore/internal/geo"
	"encore/internal/inference"
	"encore/internal/results"
)

// Transport selects how simulated clients deliver submissions to the
// collection server.
type Transport string

const (
	// TransportInProcess submits through the collector's programmatic
	// Accept entry point — no HTTP on the submission path (the seed
	// behaviour, and the ceiling the wire transports are compared against).
	TransportInProcess Transport = ""
	// TransportBeacon submits over real loopback HTTP with one v1
	// image-beacon GET per submission, via the API client SDK. The beacon
	// format carries no timestamp, so the collector stamps submissions on
	// arrival — wall-clock time, not the campaign's simulated time; runs
	// that feed time-window analyses should use TransportV2.
	TransportBeacon Transport = "beacon"
	// TransportV2 submits over real loopback HTTP with one v2 JSON POST per
	// submission, via the API client SDK; the simulated observation time
	// travels in the request, so campaign timelines survive the wire.
	TransportV2 Transport = "v2"
	// TransportV2Binary is TransportV2 with the SDK's binary encoding: the
	// same v2 batch endpoint, but each submission ships as a CRC-framed
	// application/x-encore-records frame instead of a JSON body — the
	// wire-speed lane E23 measures against the JSON baseline.
	TransportV2Binary Transport = "v2bin"
)

// Config parameterizes a load-generation run.
type Config struct {
	// Clients is the number of concurrent simulated client streams (worker
	// goroutines). Each stream forks the population's RNG and issues visits
	// back-to-back.
	Clients int
	// Visits is the total number of origin-page visits across all streams;
	// an uneven split is spread over the streams.
	Visits int
	// Start is the nominal campaign start time stamped on measurements.
	Start time.Time
	// SimulatedDuration is the campaign interval the visit timestamps span;
	// it is simulation time, not wall-clock time.
	SimulatedDuration time.Duration
	// AsyncIngest enables the collector's batched async ingest queue for the
	// run (the run drains the queue before reporting).
	AsyncIngest bool
	// Ingest configures the async queue when AsyncIngest is set; zero fields
	// fall back to collectserver defaults.
	Ingest collectserver.IngestConfig
	// Transport selects the submission path: in-process Accept calls
	// (default), or real loopback HTTP through the API client SDK
	// (TransportBeacon / TransportV2).
	Transport Transport
	// HTTPTransport, when set with a wire Transport, is the
	// http.RoundTripper the SDK client dials through — the seam chaos
	// campaigns use to interpose fault injection on the submission path.
	HTTPTransport http.RoundTripper
	// Regions optionally fixes the client-region mix for the run
	// (clientsim.CampaignConfig.Regions); empty samples by Internet
	// population. Campaign region-mix cells set this.
	Regions []geo.CountryCode
}

// DefaultConfig returns a short, CI-sized load run.
func DefaultConfig() Config {
	return Config{
		Clients:           8,
		Visits:            2000,
		Start:             time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC),
		SimulatedDuration: 24 * time.Hour,
		AsyncIngest:       true,
	}
}

// Result reports what a load run achieved.
type Result struct {
	Clients int
	// Transport is the submission path the run used.
	Transport      Transport
	Visits         int
	TasksAssigned  int
	TasksSubmitted int
	// Stored is the collection store's record count after the run (init
	// records upgraded in place, so Stored <= TasksSubmitted + inits).
	Stored int
	// Elapsed is the wall-clock time of the concurrent drive, including the
	// async queue drain.
	Elapsed time.Duration
	// SubmissionsPerSec is TasksSubmitted / Elapsed — the headline ingest
	// throughput.
	SubmissionsPerSec float64
	// AssignmentsPerSec is TasksAssigned / Elapsed, the coordination-side
	// throughput of the same run — the number the sharded assignment tier
	// (per-region coverage shards, compiled candidate pools) is measured by
	// end to end.
	AssignmentsPerSec float64
	// CoverageRegions is how many distinct client regions the scheduler
	// balanced coverage for during the run, and CoverageSpread the largest
	// per-region max−min assignment spread across schedulable patterns, both
	// read from Scheduler.CoverageSnapshot after the drive.
	CoverageRegions int
	CoverageSpread  int
	// Groups is the number of pattern×region cells the incremental
	// aggregation tier maintained during the run (0 when the stack has no
	// aggregator attached).
	Groups int
	// DetectIncremental is the latency of one filtering-detection pass over
	// the incrementally maintained group counters after the run drained —
	// the analysis-side number the streaming tier exists to keep flat as the
	// store grows.
	DetectIncremental time.Duration
	// WALAttached reports whether the stack persisted the run through a
	// write-ahead log; WAL then holds the log's counters after the final
	// sync, so a run with the WAL on can be compared against one with it off
	// (the E19 durability-overhead question). WALErr is the log's sticky
	// error, if any — non-nil means the counters describe a log that stopped
	// recording mid-run and the throughput comparison is invalid.
	WALAttached bool
	WAL         results.WALStats
	WALErr      error
}

// String renders the result as a one-line report.
func (r Result) String() string {
	transport := "in-process"
	if r.Transport != TransportInProcess {
		transport = "http/" + string(r.Transport)
	}
	s := fmt.Sprintf("loadgen: %d clients (%s), %d visits, %d assigned, %d submitted, %d stored in %v (%.0f submissions/s, %.0f assignments/s)",
		r.Clients, transport, r.Visits, r.TasksAssigned, r.TasksSubmitted, r.Stored,
		r.Elapsed.Round(time.Millisecond), r.SubmissionsPerSec, r.AssignmentsPerSec)
	if r.CoverageRegions > 0 {
		s += fmt.Sprintf("; coverage over %d regions (max spread %d)", r.CoverageRegions, r.CoverageSpread)
	}
	if r.Groups > 0 {
		s += fmt.Sprintf("; incremental detection over %d groups in %v", r.Groups, r.DetectIncremental)
	}
	if r.WALAttached {
		s += fmt.Sprintf("; WAL %d records / %.1f MiB / %d segments / %d fsyncs",
			r.WAL.Records, float64(r.WAL.Bytes)/(1<<20), r.WAL.Segments, r.WAL.Fsyncs)
		if r.WALErr != nil {
			s += fmt.Sprintf(" [WAL FAILED: %v]", r.WALErr)
		}
	}
	return s
}

// Run drives the stack's population with cfg.Clients concurrent streams and
// reports throughput. Measurements accumulate in the stack's store; when
// AsyncIngest is set the collector's queue is enabled for the run and fully
// drained (and disabled again) before Run returns, so the store is complete
// for any analysis that follows.
func Run(stack *clientsim.Stack, cfg Config) Result {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Visits <= 0 {
		cfg.Visits = cfg.Clients
	}
	if cfg.SimulatedDuration <= 0 {
		cfg.SimulatedDuration = 24 * time.Hour
	}

	var ingester *collectserver.Ingester
	if cfg.AsyncIngest {
		ingester = stack.Collector.EnableAsyncIngest(cfg.Ingest)
	}

	// Wire transports: serve the collector on a loopback listener and point
	// the population's submissions at it through the SDK, so the measured
	// path includes HTTP parsing, routing, and response writing.
	if cfg.Transport != TransportInProcess {
		srv := httptest.NewServer(stack.Collector)
		defer srv.Close()
		var clientCfg apiclient.Config
		if cfg.HTTPTransport != nil {
			clientCfg.HTTPClient = &http.Client{
				Transport: cfg.HTTPTransport,
				Timeout:   30 * time.Second,
			}
		}
		clientCfg.BinaryEncoding = cfg.Transport == TransportV2Binary
		prev := stack.Population.Collector
		stack.Population.Collector = &clientsim.RemoteCollector{
			Client: apiclient.NewWithConfig(srv.URL, clientCfg),
			UseV2:  cfg.Transport == TransportV2 || cfg.Transport == TransportV2Binary,
		}
		defer func() { stack.Population.Collector = prev }()
	}

	started := time.Now()
	campaign := stack.Population.RunCampaignConcurrent(clientsim.CampaignConfig{
		Visits:   cfg.Visits,
		Start:    cfg.Start,
		Duration: cfg.SimulatedDuration,
		Regions:  cfg.Regions,
	}, cfg.Clients)
	if ingester != nil {
		ingester.Close()
		stack.Collector.Ingest = nil
	}
	var walErr error
	if stack.WAL != nil {
		// The durability cost belongs in the measured window: sync before
		// stopping the clock, exactly as a collector shutting down would.
		walErr = stack.WAL.Sync()
	}
	elapsed := time.Since(started)

	res := Result{
		Clients:        cfg.Clients,
		Transport:      cfg.Transport,
		Visits:         campaign.Visits,
		TasksAssigned:  campaign.TasksAssigned,
		TasksSubmitted: campaign.TasksSubmitted,
		Stored:         stack.Store.Len(),
		Elapsed:        elapsed,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.SubmissionsPerSec = float64(campaign.TasksSubmitted) / secs
		res.AssignmentsPerSec = float64(campaign.TasksAssigned) / secs
	}
	if stack.WAL != nil {
		res.WALAttached = true
		res.WAL = stack.WAL.Stats()
		res.WALErr = walErr
	}
	if stack.Scheduler != nil {
		coverage := stack.Scheduler.CoverageSnapshot()
		res.CoverageRegions = len(coverage)
		for _, rc := range coverage {
			if spread := rc.Max - rc.Min; spread > res.CoverageSpread {
				res.CoverageSpread = spread
			}
		}
	}
	if stack.Aggregator != nil {
		detectStarted := time.Now()
		verdicts := inference.New(inference.DefaultConfig()).DetectIncremental(stack.Aggregator)
		res.DetectIncremental = time.Since(detectStarted)
		res.Groups = len(verdicts)
	}
	return res
}
