package loadgen

import (
	"strings"
	"testing"
	"time"

	"encore/internal/censor"
	"encore/internal/clientsim"
	"encore/internal/results"
)

// TestRunDrivesConcurrentClients runs a small concurrent load campaign through
// the full stack and checks the throughput accounting is consistent with what
// the store actually absorbed.
func TestRunDrivesConcurrentClients(t *testing.T) {
	stack := clientsim.BuildStack(clientsim.StackConfig{Seed: 9, Censor: censor.PaperPolicies()})
	cfg := Config{
		Clients:           4,
		Visits:            160,
		Start:             time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC),
		SimulatedDuration: time.Hour,
		AsyncIngest:       true,
	}
	res := Run(stack, cfg)

	if res.Visits != 160 {
		t.Fatalf("Visits=%d, want 160", res.Visits)
	}
	if res.TasksSubmitted == 0 {
		t.Fatal("no submissions made it through the stack")
	}
	if res.SubmissionsPerSec <= 0 {
		t.Fatalf("SubmissionsPerSec=%v", res.SubmissionsPerSec)
	}
	// Every submitted terminal result must be in the store (init records for
	// the same measurement upgrade in place rather than adding records).
	if res.Stored < res.TasksSubmitted {
		t.Fatalf("store has %d records, fewer than %d submissions", res.Stored, res.TasksSubmitted)
	}
	if res.Stored != stack.Store.Len() {
		t.Fatalf("Stored=%d disagrees with store Len=%d", res.Stored, stack.Store.Len())
	}
	// The async queue must have been drained and disabled.
	if stack.Collector.Ingest != nil {
		t.Fatal("Run left the async ingester enabled")
	}
	if s := res.String(); !strings.Contains(s, "submissions/s") {
		t.Fatalf("report missing throughput: %s", s)
	}
	// The scheduler's coverage shards must have seen the run's regions.
	if res.CoverageRegions == 0 {
		t.Fatal("result reports no scheduler coverage regions")
	}
	if !strings.Contains(res.String(), "coverage over") {
		t.Fatalf("report missing coverage summary: %s", res)
	}
}

// TestRunSyncPath exercises the synchronous (no queue) path for comparison
// runs.
func TestRunSyncPath(t *testing.T) {
	stack := clientsim.BuildStack(clientsim.StackConfig{Seed: 10})
	// An uneven total must be spread across the streams and run exactly.
	res := Run(stack, Config{Clients: 3, Visits: 41, AsyncIngest: false})
	if res.Visits != 41 {
		t.Fatalf("Visits=%d, want 41", res.Visits)
	}
	if res.Stored != stack.Store.Len() {
		t.Fatalf("Stored=%d disagrees with store Len=%d", res.Stored, stack.Store.Len())
	}
}

// TestRunHTTPTransports drives the same small campaign over both wire
// transports — v1 beacon GETs and v2 JSON POSTs through the client SDK
// against a real loopback listener — and checks the submissions land and
// the report names the path.
func TestRunHTTPTransports(t *testing.T) {
	for _, transport := range []Transport{TransportBeacon, TransportV2} {
		stack := clientsim.BuildStack(clientsim.StackConfig{Seed: 12, Censor: censor.PaperPolicies()})
		res := Run(stack, Config{
			Clients:           4,
			Visits:            80,
			Start:             time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC),
			SimulatedDuration: time.Hour,
			AsyncIngest:       true,
			Transport:         transport,
		})
		if res.TasksSubmitted == 0 {
			t.Fatalf("%s: no submissions over HTTP", transport)
		}
		if res.Stored != stack.Store.Len() || res.Stored == 0 {
			t.Fatalf("%s: Stored=%d store=%d", transport, res.Stored, stack.Store.Len())
		}
		if !strings.Contains(res.String(), "http/"+string(transport)) {
			t.Fatalf("%s: report omits transport: %s", transport, res)
		}
		// The wire path must restore the in-process collector afterwards.
		if _, ok := stack.Population.Collector.(*clientsim.RemoteCollector); ok {
			t.Fatalf("%s: Run left the HTTP adapter installed", transport)
		}
	}
}

// TestRunWithWALAttached drives a load run against a stack persisting through
// the write-ahead log and checks the result reports the durability tier's
// counters and that the log holds the whole run.
func TestRunWithWALAttached(t *testing.T) {
	dir := t.TempDir()
	stack := clientsim.BuildStack(clientsim.StackConfig{
		Seed:   11,
		Censor: censor.PaperPolicies(),
		WAL:    &results.WALConfig{Dir: dir},
	})
	res := Run(stack, Config{
		Clients:           4,
		Visits:            120,
		Start:             time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC),
		SimulatedDuration: time.Hour,
		AsyncIngest:       true,
	})
	if !res.WALAttached {
		t.Fatal("result does not report the attached WAL")
	}
	if res.WAL.Records == 0 || res.WAL.Bytes == 0 {
		t.Fatalf("WAL counters empty: %+v", res.WAL)
	}
	if !strings.Contains(res.String(), "WAL") {
		t.Fatalf("String() omits WAL stats: %s", res)
	}
	if err := stack.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, _, err := results.OpenStoreFromWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Len() != stack.Store.Len() {
		t.Fatalf("recovered %d measurements, want %d", recovered.Len(), stack.Store.Len())
	}
}
