package loadgen

// The chaos runner: deterministic full-stack fault campaigns over the four
// injection surfaces internal/faultinject exposes — the filesystem the WAL
// writes through, the http.RoundTripper the SDK and federation forwarder
// dial through, schedule-driven adversarial censor/netsim grids, and the
// replicated coordinator control plane (partitions, crash/restart, gossip
// storms; see chaos_coord.go). Every
// scenario runs two arms from the same seed: a fault-free baseline and a
// faulted arm, then checks the standing invariants (DetectIncremental
// verdicts equal, nothing dropped with a WAL attached, recovered snapshots
// bit-identical, degraded health reported, forwarder cursor monotone, no
// goroutine leaks). A failing scenario's error always carries the runner
// seed, so any failure replays with RunChaos(thatSeed, ...).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"time"

	"encore/internal/api"
	apiclient "encore/internal/api/client"
	"encore/internal/api/federation"
	"encore/internal/censor"
	"encore/internal/clientsim"
	"encore/internal/collectserver"
	"encore/internal/core"
	"encore/internal/faultinject"
	"encore/internal/geo"
	"encore/internal/inference"
	"encore/internal/results"
)

// Campaign shape shared by every scenario: small enough for CI, large
// enough that each pattern×region cell clears MinMeasurements and the
// mid-campaign schedule events land in populated segments.
const (
	chaosVisits     = 240
	chaosHTTPVisits = 144
	chaosSegments   = 4
)

var chaosStart = time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC)

// chaosRegions fixes the client-region mix so both arms of a scenario drive
// byte-identical campaigns: filtering regions from the paper's study plus
// unfiltered controls.
var chaosRegions = []geo.CountryCode{"CN", "PK", "IR", "TR", "US", "DE"}

// ChaosScenario is one named fault campaign.
type ChaosScenario struct {
	// Name identifies the scenario in reports and replay instructions.
	Name string
	// Surface is the injection surface the scenario exercises: "disk",
	// "network", or "censor".
	Surface string

	run func(ctx *chaosCtx) error
}

// ChaosResult reports one scenario's outcome. Err is nil on success; a
// non-nil Err's message embeds the runner seed needed to replay it.
type ChaosResult struct {
	Name    string
	Surface string
	// Seed is the scenario's derived sub-seed (informational; replay uses
	// the runner seed embedded in Err).
	Seed uint64
	Err  error
}

type chaosCtx struct {
	seed uint64
	logf func(format string, args ...any)
}

// ChaosScenarios returns the full scenario registry in execution order.
func ChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{Name: "disk-fsync-fail", Surface: "disk", run: scenarioDiskFsyncFail},
		{Name: "disk-enospc", Surface: "disk", run: scenarioDiskENOSPC},
		{Name: "disk-short-write", Surface: "disk", run: scenarioDiskShortWrite},
		{Name: "disk-crash-torn-tail", Surface: "disk", run: scenarioDiskCrashTornTail},
		{Name: "net-reset-storm", Surface: "network", run: scenarioNetResetStorm},
		{Name: "net-5xx-storm", Surface: "network", run: scenarioNet5xxStorm},
		{Name: "net-latency-spikes", Surface: "network", run: scenarioNetLatencySpikes},
		{Name: "net-truncated-body", Surface: "network", run: scenarioNetTruncatedBody},
		{Name: "censor-throttle-ramp", Surface: "censor", run: scenarioCensorThrottleRamp},
		{Name: "censor-dns-flip", Surface: "censor", run: scenarioCensorDNSFlip},
		{Name: "churn-backdated", Surface: "censor", run: scenarioChurnBackdated},
		{Name: "coord-partition-heal", Surface: "coord", run: scenarioCoordPartitionHeal},
		{Name: "coord-crash-restart", Surface: "coord", run: scenarioCoordCrashRestart},
		{Name: "coord-gossip-storm", Surface: "coord", run: scenarioCoordGossipStorm},
	}
}

// RunChaos executes every scenario sequentially, deriving each scenario's
// sub-seed from the runner seed, and returns one result per scenario. The
// same seed always produces the same campaigns, faults, and verdicts, so a
// failure reported from CI replays locally with the seed its message
// carries. logf (optional) receives progress lines.
func RunChaos(seed uint64, logf func(format string, args ...any)) []ChaosResult {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := faultinject.NewRNG(seed)
	baseline := runtime.NumGoroutine()
	var out []ChaosResult
	for _, sc := range ChaosScenarios() {
		sub := rng.Uint64()
		logf("chaos: %-22s surface=%-7s seed=%d", sc.Name, sc.Surface, sub)
		err := sc.run(&chaosCtx{seed: sub, logf: logf})
		if err == nil {
			// The no-goroutine-leak invariant holds between scenarios: every
			// server, forwarder, WAL flusher, and transport a scenario
			// started must be gone before the next one begins.
			err = awaitGoroutineBaseline(baseline)
		}
		if err != nil {
			err = fmt.Errorf("chaos scenario %s failed (replay with seed %d): %w", sc.Name, seed, err)
		}
		out = append(out, ChaosResult{Name: sc.Name, Surface: sc.Surface, Seed: sub, Err: err})
	}
	return out
}

// FindChaosScenario looks one scenario up by name in the registry.
func FindChaosScenario(name string) (ChaosScenario, bool) {
	for _, sc := range ChaosScenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return ChaosScenario{}, false
}

// RunChaosScenario executes a single named scenario with the given seed
// used directly as the scenario sub-seed (no derivation: a campaign job's
// sub-seed is already drawn from the spec's stream), including the
// goroutine-baseline check RunChaos applies between scenarios. An unknown
// name is reported as a failed result rather than a panic — campaign specs
// validate names up front, so this is a backstop.
func RunChaosScenario(name string, seed uint64, logf func(format string, args ...any)) ChaosResult {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sc, ok := FindChaosScenario(name)
	if !ok {
		return ChaosResult{Name: name, Seed: seed, Err: fmt.Errorf("unknown chaos scenario %q", name)}
	}
	baseline := runtime.NumGoroutine()
	logf("chaos: %-22s surface=%-7s seed=%d", sc.Name, sc.Surface, seed)
	err := sc.run(&chaosCtx{seed: seed, logf: logf})
	if err == nil {
		err = awaitGoroutineBaseline(baseline)
	}
	if err != nil {
		err = fmt.Errorf("chaos scenario %s failed (replay with -chaos-scenario %s -seed %d): %w", sc.Name, sc.Name, seed, err)
	}
	return ChaosResult{Name: sc.Name, Surface: sc.Surface, Seed: seed, Err: err}
}

// awaitGoroutineBaseline waits for the goroutine count to settle back to
// the pre-scenario baseline (plus slack for runtime/netpoll churn).
func awaitGoroutineBaseline(baseline int) error {
	const slack = 6
	var n int
	for i := 0; i < 100; i++ {
		n = runtime.NumGoroutine()
		if n <= baseline+slack {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("goroutine leak: %d goroutines alive, baseline %d (+%d slack)", n, baseline, slack)
}

// ---------------------------------------------------------------------------
// Arms and shared invariant checks.

// chaosArm is one side (baseline or faulted) of a scenario: a full stack,
// optionally persisting through a WAL on a FaultFS in a private directory.
type chaosArm struct {
	stack *clientsim.Stack
	ffs   *faultinject.FaultFS
	dir   string
}

func newChaosArm(seed uint64, withWAL bool, policy results.SyncPolicy) (*chaosArm, error) {
	a := &chaosArm{}
	var walCfg *results.WALConfig
	if withWAL {
		dir, err := os.MkdirTemp("", "encore-chaos-*")
		if err != nil {
			return nil, err
		}
		a.dir = dir
		a.ffs = faultinject.NewFaultFS()
		walCfg = &results.WALConfig{Dir: dir, FS: a.ffs, Policy: policy}
	}
	a.stack = clientsim.BuildStack(clientsim.StackConfig{
		Seed:   seed,
		Censor: censor.PaperPolicies(),
		WAL:    walCfg,
	})
	return a, nil
}

// close releases the arm; WAL close errors are expected on faulted arms
// (the injected fault is still sticky) and deliberately ignored.
func (a *chaosArm) close() {
	if a.stack != nil {
		_ = a.stack.Close()
	}
	if a.dir != "" {
		_ = os.RemoveAll(a.dir)
	}
}

// runSegmentedCampaign drives visits through the arm's population in
// chaosSegments contiguous time slices, firing schedule events between
// slices (progress = slices completed). order optionally permutes which
// time slice runs when (the churn scenario submits later slices first);
// nil runs them in time order.
func runSegmentedCampaign(stack *clientsim.Stack, visits int, events []faultinject.Event, order []int) clientsim.CampaignResult {
	sched := faultinject.NewSchedule(events...)
	if order == nil {
		order = make([]int, chaosSegments)
		for i := range order {
			order[i] = i
		}
	}
	total := clientsim.CampaignResult{ByRegion: make(map[geo.CountryCode]int)}
	duration := 24 * time.Hour
	segVisits := visits / chaosSegments
	segDur := duration / chaosSegments
	for j, idx := range order {
		sched.Advance(float64(j) / float64(chaosSegments))
		part := stack.Population.RunCampaign(clientsim.CampaignConfig{
			Visits:   segVisits,
			Start:    chaosStart.Add(time.Duration(idx) * segDur),
			Duration: segDur,
			Regions:  chaosRegions,
		})
		total.Visits += part.Visits
		total.OriginUnreachable += part.OriginUnreachable
		total.CoordinatorBlocked += part.CoordinatorBlocked
		total.TasksAssigned += part.TasksAssigned
		total.TasksSubmitted += part.TasksSubmitted
		for region, n := range part.ByRegion {
			total.ByRegion[region] += n
		}
	}
	sched.Advance(1)
	return total
}

// armVerdicts runs the incremental detector over an aggregation tier.
func armVerdicts(agg *results.Aggregator) []inference.Verdict {
	return inference.New(inference.Config{}).DetectIncremental(agg)
}

// compareVerdicts checks the faulted arm reached exactly the fault-free
// arm's conclusions — the detection pipeline's outcome must be invariant
// under infrastructure faults.
func compareVerdicts(baseline, faulted []inference.Verdict) error {
	if reflect.DeepEqual(baseline, faulted) {
		return nil
	}
	if len(baseline) != len(faulted) {
		return fmt.Errorf("verdict count diverged: baseline %d, chaos %d", len(baseline), len(faulted))
	}
	for i := range baseline {
		if !reflect.DeepEqual(baseline[i], faulted[i]) {
			return fmt.Errorf("verdict diverged for %s/%s: baseline %+v, chaos %+v",
				baseline[i].PatternKey, baseline[i].Region, baseline[i], faulted[i])
		}
	}
	return fmt.Errorf("verdicts diverged")
}

// compareStores checks the faulted arm lost no submissions.
func compareStores(baseline, faulted *results.Store) error {
	if baseline.Len() != faulted.Len() {
		return fmt.Errorf("records dropped: baseline stored %d, chaos stored %d", baseline.Len(), faulted.Len())
	}
	return nil
}

// collectorHealth fetches /v2/healthz from a collector over a throwaway
// loopback listener.
func collectorHealth(c *collectserver.Server) (api.HealthResponse, error) {
	srv := httptest.NewServer(c)
	defer srv.Close()
	resp, err := http.Get(srv.URL + api.V2HealthPath)
	if err != nil {
		return api.HealthResponse{}, err
	}
	defer resp.Body.Close()
	var h api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return api.HealthResponse{}, err
	}
	return h, nil
}

// recoveredJSONL replays the WAL in dir into a fresh store and renders it
// as JSONL — the byte string two recoveries of the same log must agree on.
func recoveredJSONL(dir string, fs faultinject.FS) ([]byte, results.WALRecoveryStats, error) {
	st, stats, err := results.OpenStoreFromWALFS(dir, fs)
	if err != nil {
		return nil, stats, err
	}
	var buf bytes.Buffer
	if err := st.WriteJSONL(&buf); err != nil {
		return nil, stats, err
	}
	return buf.Bytes(), stats, nil
}

// ---------------------------------------------------------------------------
// Disk surface.

// diskFault parameterizes the three sticky-disk scenarios, which share a
// skeleton: identical campaigns on both arms, a mid-campaign disk fault on
// the chaos arm, then the full invariant battery plus recovery.
type diskFault struct {
	arm     func(a *chaosArm) faultinject.Event
	disarm  func(a *chaosArm)
	wantErr error
}

func runStickyDiskScenario(ctx *chaosCtx, fault diskFault) error {
	base, err := newChaosArm(ctx.seed, true, results.SyncAlways)
	if err != nil {
		return err
	}
	defer base.close()
	faulted, err := newChaosArm(ctx.seed, true, results.SyncAlways)
	if err != nil {
		return err
	}
	defer faulted.close()

	runSegmentedCampaign(base.stack, chaosVisits, nil, nil)
	runSegmentedCampaign(faulted.stack, chaosVisits, []faultinject.Event{fault.arm(faulted)}, nil)

	walErr := faulted.stack.WAL.Err()
	if walErr == nil {
		return fmt.Errorf("injected disk fault never made the WAL sticky")
	}
	if fault.wantErr != nil && !errors.Is(walErr, fault.wantErr) {
		return fmt.Errorf("WAL sticky error = %v, want %v", walErr, fault.wantErr)
	}
	// The collector keeps serving from memory and reports the degradation.
	if err := compareStores(base.stack.Store, faulted.stack.Store); err != nil {
		return err
	}
	if err := compareVerdicts(armVerdicts(base.stack.Aggregator), armVerdicts(faulted.stack.Aggregator)); err != nil {
		return err
	}
	h, err := collectorHealth(faulted.stack.Collector)
	if err != nil {
		return err
	}
	if h.Status != api.StatusDegraded || h.WALError == "" {
		return fmt.Errorf("sticky-WAL collector health = %q (wal_error %q), want degraded with detail", h.Status, h.WALError)
	}
	// Recovery: once the fault clears, the log replays to a clean prefix of
	// what the collector held — never more, never corrupt.
	fault.disarm(faulted)
	recovered, _, err := results.OpenStoreFromWALFS(faulted.dir, faulted.ffs)
	if err != nil {
		return fmt.Errorf("recovering from faulted WAL dir: %w", err)
	}
	if recovered.Len() == 0 || recovered.Len() > faulted.stack.Store.Len() {
		return fmt.Errorf("recovered %d records, want 1..%d (durable prefix)", recovered.Len(), faulted.stack.Store.Len())
	}
	ctx.logf("chaos:   sticky %v; store intact (%d records), recovered prefix %d", walErr, faulted.stack.Store.Len(), recovered.Len())
	return nil
}

func scenarioDiskFsyncFail(ctx *chaosCtx) error {
	return runStickyDiskScenario(ctx, diskFault{
		arm: func(a *chaosArm) faultinject.Event {
			return faultinject.Event{At: 0.5, Name: "fsync-fail", Apply: a.ffs.InjectFsyncFailures}
		},
		disarm:  func(a *chaosArm) { a.ffs.ClearFsyncFailures() },
		wantErr: faultinject.ErrInjectedFsync,
	})
}

func scenarioDiskENOSPC(ctx *chaosCtx) error {
	return runStickyDiskScenario(ctx, diskFault{
		arm: func(a *chaosArm) faultinject.Event {
			// The disk "fills" mid-campaign: 8 KiB of budget absorbs a few
			// more appends, then every write fails with ENOSPC.
			return faultinject.Event{At: 0.5, Name: "enospc", Apply: func() { a.ffs.SetWriteBudget(8 << 10) }}
		},
		disarm:  func(a *chaosArm) { a.ffs.SetWriteBudget(-1) },
		wantErr: faultinject.ErrInjectedNoSpace,
	})
}

func scenarioDiskShortWrite(ctx *chaosCtx) error {
	return runStickyDiskScenario(ctx, diskFault{
		arm: func(a *chaosArm) faultinject.Event {
			return faultinject.Event{At: 0.5, Name: "short-write", Apply: func() { a.ffs.InjectShortWrites(1) }}
		},
		disarm:  func(a *chaosArm) {},
		wantErr: nil, // surfaces as a wrapped io.ErrShortWrite via bufio
	})
}

// scenarioDiskCrashTornTail kills the "machine" mid-write: everything synced
// before the crash must recover bit-identically, the torn unsynced tail must
// be discarded cleanly, and the in-memory arm's verdicts must still match
// the fault-free baseline.
func scenarioDiskCrashTornTail(ctx *chaosCtx) error {
	// SyncNone: durability happens only at explicit sync barriers, so the
	// final segment's records are exactly the unsynced tail the crash tears.
	base, err := newChaosArm(ctx.seed, true, results.SyncNone)
	if err != nil {
		return err
	}
	defer base.close()
	faulted, err := newChaosArm(ctx.seed, true, results.SyncNone)
	if err != nil {
		return err
	}
	defer faulted.close()

	runSegmentedCampaign(base.stack, chaosVisits, nil, nil)

	// Faulted arm: three quarters of the same campaign, then a durable
	// snapshot at a sync barrier...
	seg := chaosVisits / chaosSegments
	segDur := 24 * time.Hour / chaosSegments
	runSeg := func(idx int) {
		faulted.stack.Population.RunCampaign(clientsim.CampaignConfig{
			Visits:   seg,
			Start:    chaosStart.Add(time.Duration(idx) * segDur),
			Duration: segDur,
			Regions:  chaosRegions,
		})
	}
	for idx := 0; idx < 3; idx++ {
		runSeg(idx)
	}
	if err := faulted.stack.WAL.Sync(); err != nil {
		return fmt.Errorf("sync before snapshot: %w", err)
	}
	durable, _, err := recoveredJSONL(faulted.dir, faulted.ffs)
	if err != nil {
		return fmt.Errorf("snapshot at sync barrier: %w", err)
	}
	// ...then more records that reach the OS (Flush) but never stable
	// storage, and the crash leaves a torn frame on the tail.
	runSeg(3)
	if err := faulted.stack.WAL.Flush(); err != nil {
		return fmt.Errorf("flush after final segment: %w", err)
	}
	if _, err := faulted.ffs.Crash(9); err != nil {
		return fmt.Errorf("crash: %w", err)
	}

	// Recovery happens on the real filesystem: the process is gone, the
	// FaultFS with it; only the files survive.
	after, stats, err := recoveredJSONL(faulted.dir, faultinject.OS())
	if err != nil {
		return fmt.Errorf("recovering crashed WAL dir: %w", err)
	}
	if !bytes.Equal(durable, after) {
		return fmt.Errorf("recovered snapshot not bit-identical: %d bytes at sync barrier, %d after crash recovery", len(durable), len(after))
	}
	// The in-memory store ran the full campaign either way.
	if err := compareStores(base.stack.Store, faulted.stack.Store); err != nil {
		return err
	}
	if err := compareVerdicts(armVerdicts(base.stack.Aggregator), armVerdicts(faulted.stack.Aggregator)); err != nil {
		return err
	}
	ctx.logf("chaos:   crash recovery bit-identical (%d bytes, %d torn segments tolerated)", len(after), stats.TornSegments)
	return nil
}

// ---------------------------------------------------------------------------
// Network surface.

// httpLane rewires an arm's population to submit over real loopback HTTP
// (v2 JSON POSTs through the SDK), with the transport wrapped by the
// caller — the seam the network-fault scenarios inject through.
type httpLane struct {
	srv     *httptest.Server
	inner   *http.Transport
	restore func()
}

func attachHTTPLane(stack *clientsim.Stack, wrap func(http.RoundTripper) http.RoundTripper) *httpLane {
	lane := &httpLane{
		srv:   httptest.NewServer(stack.Collector),
		inner: &http.Transport{},
	}
	var transport http.RoundTripper = lane.inner
	if wrap != nil {
		transport = wrap(transport)
	}
	client := apiclient.NewWithConfig(lane.srv.URL, apiclient.Config{
		HTTPClient: &http.Client{Transport: transport, Timeout: 30 * time.Second},
		// Retry budget above the RoundTripper's consecutive-fault cap (2),
		// with near-zero backoff so a chaos run stays CI-fast.
		Retries:         4,
		RetryBackoff:    time.Millisecond,
		RetryBackoffMax: 4 * time.Millisecond,
	})
	prev := stack.Population.Collector
	stack.Population.Collector = &clientsim.RemoteCollector{Client: client, UseV2: true}
	lane.restore = func() { stack.Population.Collector = prev }
	return lane
}

func (l *httpLane) close() {
	l.restore()
	l.srv.Close()
	l.inner.CloseIdleConnections()
}

// runHTTPArms runs the same campaign over HTTP on a clean arm and a faulted
// arm and applies the shared invariants. wrap builds the faulted arm's
// RoundTripper. censorEvents (optional) is the adversarial timeline and
// fires on BOTH arms — the baseline must face the same adversary;
// faultEvents (optional) are the infrastructure faults and fire on the
// faulted arm only.
func runHTTPArms(ctx *chaosCtx, wrap func(http.RoundTripper) *faultinject.RoundTripper,
	censorEvents func(a *chaosArm) []faultinject.Event,
	faultEvents func(rt *faultinject.RoundTripper) []faultinject.Event,
	order []int,
	check func(rt *faultinject.RoundTripper) error) error {

	base, err := newChaosArm(ctx.seed, false, 0)
	if err != nil {
		return err
	}
	defer base.close()
	baseLane := attachHTTPLane(base.stack, nil)
	var baseEvs []faultinject.Event
	if censorEvents != nil {
		baseEvs = censorEvents(base)
	}
	runSegmentedCampaign(base.stack, chaosHTTPVisits, baseEvs, order)
	baseLane.close()

	faulted, err := newChaosArm(ctx.seed, false, 0)
	if err != nil {
		return err
	}
	defer faulted.close()
	var rt *faultinject.RoundTripper
	lane := attachHTTPLane(faulted.stack, func(inner http.RoundTripper) http.RoundTripper {
		rt = wrap(inner)
		return rt
	})
	var evs []faultinject.Event
	if censorEvents != nil {
		evs = append(evs, censorEvents(faulted)...)
	}
	if faultEvents != nil {
		evs = append(evs, faultEvents(rt)...)
	}
	runSegmentedCampaign(faulted.stack, chaosHTTPVisits, evs, order)
	lane.close()

	if err := check(rt); err != nil {
		return err
	}
	if err := compareStores(base.stack.Store, faulted.stack.Store); err != nil {
		return err
	}
	if err := compareVerdicts(armVerdicts(base.stack.Aggregator), armVerdicts(faulted.stack.Aggregator)); err != nil {
		return err
	}
	st := rt.Stats()
	ctx.logf("chaos:   %d requests rode out %d resets / %d storms / %d truncations / %d delays",
		st.Requests, st.Resets, st.StormResponses, st.Truncations, st.Delays)
	return nil
}

func scenarioNetResetStorm(ctx *chaosCtx) error {
	return runHTTPArms(ctx,
		func(inner http.RoundTripper) *faultinject.RoundTripper {
			return faultinject.NewRoundTripper(inner, faultinject.NetFaults{Seed: ctx.seed, ResetProb: 0.35})
		},
		nil, nil, nil,
		func(rt *faultinject.RoundTripper) error {
			if st := rt.Stats(); st.Resets == 0 {
				return fmt.Errorf("reset fault never fired across %d requests", st.Requests)
			}
			return nil
		})
}

func scenarioNet5xxStorm(ctx *chaosCtx) error {
	const perStorm = 5
	return runHTTPArms(ctx,
		func(inner http.RoundTripper) *faultinject.RoundTripper {
			return faultinject.NewRoundTripper(inner, faultinject.NetFaults{Seed: ctx.seed})
		},
		nil,
		func(rt *faultinject.RoundTripper) []faultinject.Event {
			// Two overload storms, one with a Retry-After flood: every
			// response until the counter drains is a synthesized 5xx
			// carrying Retry-After, exactly what a shedding upstream emits.
			return []faultinject.Event{
				{At: 0.25, Name: "503-storm", Apply: func() { rt.FailNext(perStorm, http.StatusServiceUnavailable, "0") }},
				{At: 0.75, Name: "500-storm", Apply: func() { rt.FailNext(perStorm, http.StatusInternalServerError, "") }},
			}
		},
		nil,
		func(rt *faultinject.RoundTripper) error {
			if st := rt.Stats(); st.StormResponses != 2*perStorm {
				return fmt.Errorf("storm responses = %d, want %d", st.StormResponses, 2*perStorm)
			}
			return nil
		})
}

// scenarioNetLatencySpikes goes through loadgen.Run itself — the
// Config.HTTPTransport seam — so the measured-path wiring is exercised too.
func scenarioNetLatencySpikes(ctx *chaosCtx) error {
	runArm := func(transport http.RoundTripper) (*chaosArm, error) {
		a, err := newChaosArm(ctx.seed, false, 0)
		if err != nil {
			return nil, err
		}
		Run(a.stack, Config{
			Clients:           1,
			Visits:            chaosHTTPVisits,
			Start:             chaosStart,
			SimulatedDuration: 24 * time.Hour,
			Transport:         TransportV2,
			HTTPTransport:     transport,
		})
		return a, nil
	}
	base, err := runArm(nil)
	if err != nil {
		return err
	}
	defer base.close()
	inner := &http.Transport{}
	defer inner.CloseIdleConnections()
	rt := faultinject.NewRoundTripper(inner, faultinject.NetFaults{
		Seed:        ctx.seed,
		LatencyProb: 0.3,
		Latency:     2 * time.Millisecond,
	})
	faulted, err := runArm(rt)
	if err != nil {
		return err
	}
	defer faulted.close()
	st := rt.Stats()
	if st.Delays == 0 {
		return fmt.Errorf("latency fault never fired across %d requests", st.Requests)
	}
	if err := compareStores(base.stack.Store, faulted.stack.Store); err != nil {
		return err
	}
	if err := compareVerdicts(armVerdicts(base.stack.Aggregator), armVerdicts(faulted.stack.Aggregator)); err != nil {
		return err
	}
	ctx.logf("chaos:   %d of %d requests delayed; verdicts unmoved", st.Delays, st.Requests)
	return nil
}

// chaosEdgeMeasurement builds the deterministic attributed records the
// federation scenario forwards: one pattern measured from four regions,
// failing only where the chaos "censor" says so (CN).
func chaosEdgeMeasurement(i int) results.Measurement {
	regions := []geo.CountryCode{"CN", "PK", "US", "DE"}
	region := regions[i%len(regions)]
	state := core.StateSuccess
	if region == "CN" {
		state = core.StateFailure
	}
	return results.Measurement{
		MeasurementID: fmt.Sprintf("chaos-%d", i),
		PatternKey:    "domain:youtube.com",
		TargetURL:     "http://youtube.com/favicon.ico",
		TaskType:      core.TaskImage,
		State:         state,
		ClientIP:      "203.0.113.9",
		Region:        region,
		Browser:       core.BrowserChrome,
		Received:      chaosStart.Add(time.Duration(i) * time.Second),
	}
}

// scenarioNetTruncatedBody aims truncated response bodies at the federation
// forwarder: the SDK surfaces a decode failure, the forwarder re-queues the
// batch, and the upstream's idempotent merge absorbs the duplicate send.
// Nothing may be dropped (WAL attached), and the forward cursor must be
// monotone throughout.
func scenarioNetTruncatedBody(ctx *chaosCtx) error {
	const records = 96
	const chunk = 16
	type armOut struct {
		verdicts []inference.Verdict
		upLen    int
		fstats   federation.ForwarderStats
		nstats   faultinject.NetStats
		cursors  []uint64
	}
	runArm := func(faulty bool) (*armOut, error) {
		upStore := results.NewStore()
		upAgg := results.NewAggregator(results.AggregatorConfig{})
		upStore.AddObserver(upAgg)
		up := collectserver.New(upStore, results.NewTaskIndex(), geo.NewRegistry(1))
		up.Guard = nil
		up.AllowAttributed = true
		upSrv := httptest.NewServer(up)
		defer upSrv.Close()

		dir, err := os.MkdirTemp("", "encore-chaos-fwd-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		wal, err := results.OpenWAL(results.WALConfig{Dir: dir, Policy: results.SyncAlways})
		if err != nil {
			return nil, err
		}
		defer wal.Close()
		edge := results.NewStore()
		edge.AddObserver(wal) // WAL first: durable before the forwarder sees it

		inner := &http.Transport{}
		defer inner.CloseIdleConnections()
		var transport http.RoundTripper = inner
		var rt *faultinject.RoundTripper
		if faulty {
			rt = faultinject.NewRoundTripper(inner, faultinject.NetFaults{Seed: ctx.seed, TruncateProb: 0.5})
			transport = rt
		}
		fwd, err := federation.NewForwarder(federation.ForwarderConfig{
			Client: apiclient.NewWithConfig(upSrv.URL, apiclient.Config{
				HTTPClient:   &http.Client{Transport: transport, Timeout: 30 * time.Second},
				Retries:      2,
				RetryBackoff: time.Millisecond,
			}),
			MaxBatch:      chunk,
			FlushInterval: 2 * time.Millisecond,
			WAL:           wal,
		})
		if err != nil {
			return nil, err
		}
		edge.AddObserver(fwd)

		// A truncated 2xx body is not retried inside the SDK (the server
		// already committed), so Flush surfaces it; the consecutive-fault
		// cap guarantees a bounded number of re-flushes converges.
		flush := func() error {
			var last error
			for attempt := 0; attempt < 20; attempt++ {
				if last = fwd.Flush(context.Background()); last == nil {
					return nil
				}
			}
			return fmt.Errorf("forwarder flush never converged: %w", last)
		}

		out := &armOut{}
		for i := 0; i < records; i++ {
			if err := edge.Add(chaosEdgeMeasurement(i)); err != nil {
				return nil, err
			}
			if (i+1)%chunk == 0 {
				if err := flush(); err != nil {
					return nil, err
				}
				out.cursors = append(out.cursors, fwd.Stats().AckedCursor)
			}
		}
		if err := flush(); err != nil {
			return nil, err
		}
		out.fstats = fwd.Stats()
		if err := fwd.Close(); err != nil {
			return nil, err
		}
		if rt != nil {
			out.nstats = rt.Stats()
		}
		out.verdicts = armVerdicts(upAgg)
		out.upLen = upStore.Len()
		return out, nil
	}

	base, err := runArm(false)
	if err != nil {
		return fmt.Errorf("baseline arm: %w", err)
	}
	faulted, err := runArm(true)
	if err != nil {
		return fmt.Errorf("faulted arm: %w", err)
	}
	if faulted.nstats.Truncations == 0 {
		return fmt.Errorf("truncation fault never fired across %d requests", faulted.nstats.Requests)
	}
	if faulted.fstats.Dropped != 0 {
		return fmt.Errorf("WAL-backed forwarder dropped %d records under truncation faults", faulted.fstats.Dropped)
	}
	var prev uint64
	for i, c := range faulted.cursors {
		if c < prev {
			return fmt.Errorf("forward cursor regressed at sample %d: %d after %d", i, c, prev)
		}
		prev = c
	}
	if prev != records {
		return fmt.Errorf("final forward cursor = %d, want %d", prev, records)
	}
	if base.upLen != faulted.upLen {
		return fmt.Errorf("upstream records diverged: baseline %d, chaos %d", base.upLen, faulted.upLen)
	}
	if err := compareVerdicts(base.verdicts, faulted.verdicts); err != nil {
		return err
	}
	ctx.logf("chaos:   %d truncations absorbed; upstream complete (%d records), cursor monotone to %d",
		faulted.nstats.Truncations, faulted.upLen, prev)
	return nil
}

// ---------------------------------------------------------------------------
// Censor surface: schedule-driven adversarial grids, with an infrastructure
// fault layered onto the chaos arm only. The adversarial timeline runs on
// BOTH arms — the invariant is that infrastructure faults add nothing on
// top of what the adversary already causes.

// throttleRampEvents squeezes CN over the campaign: first a per-pattern
// throttle, then region-wide path latency, finally a saturating ramp past
// client patience.
func throttleRampEvents(stack *clientsim.Stack) []faultinject.Event {
	throttle := func(delayMillis float64) func() {
		return func() {
			p := &censor.Policy{Region: "CN", ThrottleDelayMillis: delayMillis}
			p.AddDomain("youtube.com", censor.MechanismThrottle, "throttling ramp")
			p.AddDomain("twitter.com", censor.MechanismTCPReset, "GFW TCP reset")
			stack.Censor.SetPolicy(p)
		}
	}
	return []faultinject.Event{
		{At: 0.25, Name: "throttle-8s", Apply: throttle(8_000)},
		{At: 0.5, Name: "region-latency-12s", Apply: func() { stack.Net.SetRegionExtraLatency("CN", 12_000) }},
		{At: 0.75, Name: "throttle-saturate", Apply: func() {
			throttle(35_000)()
			stack.Net.SetRegionExtraLatency("CN", 20_000)
		}},
	}
}

func scenarioCensorThrottleRamp(ctx *chaosCtx) error {
	base, err := newChaosArm(ctx.seed, true, results.SyncAlways)
	if err != nil {
		return err
	}
	defer base.close()
	faulted, err := newChaosArm(ctx.seed, true, results.SyncAlways)
	if err != nil {
		return err
	}
	defer faulted.close()

	runSegmentedCampaign(base.stack, chaosVisits, throttleRampEvents(base.stack), nil)
	chaosEvents := append(throttleRampEvents(faulted.stack), faultinject.Event{
		At: 0.5, Name: "wal-fsync-fail", Apply: faulted.ffs.InjectFsyncFailures,
	})
	runSegmentedCampaign(faulted.stack, chaosVisits, chaosEvents, nil)

	if faulted.stack.WAL.Err() == nil {
		return fmt.Errorf("injected fsync fault never made the WAL sticky")
	}
	if err := compareStores(base.stack.Store, faulted.stack.Store); err != nil {
		return err
	}
	if err := compareVerdicts(armVerdicts(base.stack.Aggregator), armVerdicts(faulted.stack.Aggregator)); err != nil {
		return err
	}
	h, err := collectorHealth(faulted.stack.Collector)
	if err != nil {
		return err
	}
	if h.Status != api.StatusDegraded {
		return fmt.Errorf("collector health under ramp+disk fault = %q, want degraded", h.Status)
	}
	ctx.logf("chaos:   throttling ramp verdicts identical under sticky WAL")
	return nil
}

// dnsFlipEvents poisons TR's DNS for twitter mid-campaign and lifts PK's
// YouTube ban near the end — the policy-flip timeline both arms share.
func dnsFlipEvents(stack *clientsim.Stack) []faultinject.Event {
	return []faultinject.Event{
		{At: 0.5, Name: "dns-poison-TR", Apply: func() {
			p := &censor.Policy{Region: "TR"}
			p.AddDomain("twitter.com", censor.MechanismDNSRedirect, "court-order flip")
			stack.Censor.SetPolicy(p)
		}},
		{At: 0.75, Name: "dns-unpoison-PK", Apply: func() { stack.Censor.RemovePolicy("PK") }},
	}
}

func scenarioCensorDNSFlip(ctx *chaosCtx) error {
	return runHTTPArms(ctx,
		func(inner http.RoundTripper) *faultinject.RoundTripper {
			return faultinject.NewRoundTripper(inner, faultinject.NetFaults{Seed: ctx.seed, ResetProb: 0.3})
		},
		func(a *chaosArm) []faultinject.Event { return dnsFlipEvents(a.stack) },
		nil,
		nil,
		func(rt *faultinject.RoundTripper) error {
			if st := rt.Stats(); st.Resets == 0 {
				return fmt.Errorf("reset fault never fired across %d requests", st.Requests)
			}
			return nil
		})
}

func scenarioChurnBackdated(ctx *chaosCtx) error {
	// Clients churn through the campaign out of time order: later time
	// slices upload first, earlier slices arrive last as backdated v2
	// batches. The collector must keep its timeline straight either way.
	order := []int{2, 0, 3, 1}
	const perStorm = 4
	return runHTTPArms(ctx,
		func(inner http.RoundTripper) *faultinject.RoundTripper {
			return faultinject.NewRoundTripper(inner, faultinject.NetFaults{Seed: ctx.seed})
		},
		nil,
		func(rt *faultinject.RoundTripper) []faultinject.Event {
			return []faultinject.Event{
				{At: 0.5, Name: "mid-churn-storm", Apply: func() { rt.FailNext(perStorm, http.StatusServiceUnavailable, "0") }},
			}
		},
		order,
		func(rt *faultinject.RoundTripper) error {
			if st := rt.Stats(); st.StormResponses != perStorm {
				return fmt.Errorf("storm responses = %d, want %d", st.StormResponses, perStorm)
			}
			return nil
		})
}
