package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestStatusForCode(t *testing.T) {
	cases := map[string]int{
		CodeInvalidSubmission:     http.StatusBadRequest,
		CodeBadRequest:            http.StatusBadRequest,
		CodeUnknownMeasurement:    http.StatusNotFound,
		CodeNotFound:              http.StatusNotFound,
		CodeMethodNotAllowed:      http.StatusMethodNotAllowed,
		CodeConflictingResult:     http.StatusConflict,
		CodeRateLimited:           http.StatusTooManyRequests,
		CodeAttributionNotAllowed: http.StatusForbidden,
		CodeInternal:              http.StatusInternalServerError,
		"some-unknown-code":       http.StatusBadRequest,
	}
	for code, want := range cases {
		if got := StatusForCode(code); got != want {
			t.Errorf("StatusForCode(%q)=%d, want %d", code, got, want)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := Errorf(CodeRateLimited, "client %s over limit", "1.2.3.4")
	if e.Status() != http.StatusTooManyRequests {
		t.Fatalf("status=%d", e.Status())
	}
	if !strings.Contains(e.Error(), CodeRateLimited) {
		t.Fatalf("Error()=%q", e.Error())
	}
	rec := httptest.NewRecorder()
	WriteError(rec, e)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("written status=%d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type=%q", ct)
	}
	var decoded Error
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Code != CodeRateLimited {
		t.Fatalf("decoded code=%q", decoded.Code)
	}
}

func TestWriteErrorV1PlainText(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteErrorV1(rec, &Error{Code: CodeConflictingResult, Message: "internal detail that must not leak"})
	if rec.Code != http.StatusConflict {
		t.Fatalf("status=%d", rec.Code)
	}
	body := rec.Body.String()
	if strings.TrimSpace(body) != CodeConflictingResult {
		t.Fatalf("v1 body=%q, want just the code", body)
	}
}

func TestBeaconURL(t *testing.T) {
	u := BeaconURL("http://collector.example.org/", "m-3", "failure", 1234)
	for _, want := range []string{"cmh-id=m-3", "cmh-result=failure", "cmh-elapsed=1234"} {
		if !strings.Contains(u, want) {
			t.Fatalf("BeaconURL=%q missing %q", u, want)
		}
	}
	if strings.Contains(u, "org//submit") {
		t.Fatalf("double slash: %q", u)
	}
	if got := TaskJSURL("http://coordinator.example.org/"); got != "http://coordinator.example.org/task.js" {
		t.Fatalf("TaskJSURL=%q", got)
	}
}

func TestParseTaskRequest(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/v2/tasks?dwell-seconds=30.5&script=1", nil)
	req := ParseTaskRequest(r)
	if req.DwellSeconds != 30.5 || !req.IncludeScript {
		t.Fatalf("parsed %+v", req)
	}
	r = httptest.NewRequest(http.MethodGet, "/v2/tasks?dwell-seconds=-4&script=no", nil)
	req = ParseTaskRequest(r)
	if req.DwellSeconds != 0 || req.IncludeScript {
		t.Fatalf("bad params not ignored: %+v", req)
	}
}

func TestBatchSubmitRequestJSONShape(t *testing.T) {
	// The wire field names are the contract; pin them.
	body := `{"submissions":[{"measurement_id":"m-1","result":"success","elapsed_millis":12.5}]}`
	var req BatchSubmitRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Submissions) != 1 || req.Submissions[0].MeasurementID != "m-1" ||
		req.Submissions[0].Result != "success" || req.Submissions[0].ElapsedMillis != 12.5 {
		t.Fatalf("decoded %+v", req)
	}
	out, err := json.Marshal(BatchSubmitResponse{Accepted: 3, Rejected: []RejectedSubmission{
		{Index: 1, MeasurementID: "m-2", Code: CodeUnknownMeasurement},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"accepted":3`, `"index":1`, `"code":"unknown_measurement"`} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("response JSON %s missing %s", out, want)
		}
	}
}
