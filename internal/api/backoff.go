package api

import "time"

// BackoffDelay is the shared retry delay policy every API consumer applies
// before re-contacting a failing server: exponential doubling of base per
// attempt with a capped shift (so an unbounded `<<` can neither overflow nor
// grow past max), then full jitter on the upper half of the window, so a
// fleet recovering from one outage spreads out instead of retrying in
// lockstep. attempt counts from 1 for the first retry; randN must return a
// uniform value in [0, n) — the SDK passes math/rand/v2's Int64N, while the
// coordinator federation's peer probing passes a seeded generator so chaos
// campaigns replay their exact delays.
func BackoffDelay(base, max time.Duration, attempt int, randN func(int64) int64) time.Duration {
	backoff := base
	if shift := attempt - 1; shift > 0 {
		if shift > 20 {
			shift = 20
		}
		backoff <<= shift
	}
	if backoff > max || backoff <= 0 {
		backoff = max
	}
	if half := int64(backoff / 2); half > 0 {
		backoff = backoff/2 + time.Duration(randN(half+1))
	}
	return backoff
}
