package federation

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	apiclient "encore/internal/api/client"
	"encore/internal/collectserver"
	"encore/internal/core"
	"encore/internal/geo"
	"encore/internal/results"
)

// upstream builds an aggregation-tier collection server (AllowAttributed)
// with an incremental aggregator attached.
func upstream(t *testing.T) (*results.Store, *results.Aggregator, *httptest.Server) {
	t.Helper()
	store := results.NewStore()
	agg := results.NewAggregator(results.AggregatorConfig{})
	store.AddObserver(agg)
	s := collectserver.New(store, results.NewTaskIndex(), geo.NewRegistry(1))
	s.Guard = nil
	s.AllowAttributed = true
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return store, agg, srv
}

func edgeMeasurement(i int, state core.State) results.Measurement {
	return results.Measurement{
		MeasurementID: fmt.Sprintf("edge-%d", i),
		PatternKey:    "domain:youtube.com",
		TargetURL:     "http://youtube.com/favicon.ico",
		TaskType:      core.TaskImage,
		State:         state,
		ClientIP:      "203.0.113.9",
		Region:        "PK",
		Browser:       core.BrowserChrome,
		Received:      time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
	}
}

// TestForwarderStreamsCommits attaches a forwarder to an edge store as a
// commit observer and checks every committed record (inserts and in-place
// upgrades) reaches the upstream store and its aggregation tier.
func TestForwarderStreamsCommits(t *testing.T) {
	upStore, upAgg, upSrv := upstream(t)
	f, err := NewForwarder(ForwarderConfig{Upstream: upSrv.URL, MaxBatch: 8, FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	edge := results.NewStore()
	edge.AddObserver(f)
	const n = 50
	for i := 0; i < n; i++ {
		if err := edge.Add(edgeMeasurement(i, core.StateInit)); err != nil {
			t.Fatal(err)
		}
	}
	// Upgrade half in place: the upgrade commit must forward too.
	for i := 0; i < n/2; i++ {
		if err := edge.Add(edgeMeasurement(i, core.StateFailure)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if upStore.Len() != n {
		t.Fatalf("upstream has %d records, want %d", upStore.Len(), n)
	}
	for i := 0; i < n; i++ {
		want := core.StateInit
		if i < n/2 {
			want = core.StateFailure
		}
		m, ok := upStore.Get(fmt.Sprintf("edge-%d", i))
		if !ok || m.State != want {
			t.Fatalf("upstream edge-%d = %+v, want state %s", i, m, want)
		}
	}
	st := f.Stats()
	if st.Observed != n+n/2 || st.Forwarded != n+n/2 || st.Rejected != 0 || st.Dropped != 0 || st.Pending != 0 {
		t.Fatalf("stats %+v", st)
	}
	// The upstream's incremental aggregation tier saw every transition.
	groups := upAgg.Groups()
	if len(groups) != 1 {
		t.Fatalf("upstream aggregator groups: %d", len(groups))
	}
	g := groups[0]
	if g.Total != n || g.Failures != n/2 || g.InitOnly != n-n/2 {
		t.Fatalf("upstream group %+v", g)
	}
}

// TestForwarderRidesOutUpstreamOutage kills the upstream listener
// mid-stream and restarts it on the same address: records committed during
// the outage must be delivered after recovery, none lost.
func TestForwarderRidesOutUpstreamOutage(t *testing.T) {
	upStore := results.NewStore()
	up := collectserver.New(upStore, results.NewTaskIndex(), geo.NewRegistry(1))
	up.Guard = nil
	up.AllowAttributed = true

	var down atomic.Bool
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "upstream down", http.StatusServiceUnavailable)
			return
		}
		up.ServeHTTP(w, r)
	}))
	defer gate.Close()

	f, err := NewForwarder(ForwarderConfig{
		Client:        apiclient.NewWithConfig(gate.URL, apiclient.Config{Retries: 2, RetryBackoff: time.Millisecond}),
		MaxBatch:      4,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	edge := results.NewStore()
	edge.AddObserver(f)

	for i := 0; i < 10; i++ {
		_ = edge.Add(edgeMeasurement(i, core.StateSuccess))
	}
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	down.Store(true)
	for i := 10; i < 30; i++ {
		_ = edge.Add(edgeMeasurement(i, core.StateSuccess))
	}
	// Give the sender a chance to fail against the dead upstream.
	deadline := time.Now().Add(2 * time.Second)
	for f.Stats().LastError == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if f.Stats().LastError == nil {
		t.Fatal("forwarder never observed the outage")
	}
	if upStore.Len() != 10 {
		t.Fatalf("upstream gained records while down: %d", upStore.Len())
	}

	down.Store(false)
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if upStore.Len() != 30 {
		t.Fatalf("upstream has %d after recovery, want 30", upStore.Len())
	}
	st := f.Stats()
	if st.Forwarded != 30 || st.Dropped != 0 || st.Pending != 0 || st.LastError != nil {
		t.Fatalf("stats after recovery %+v", st)
	}
}

// TestForwarderBoundedBufferDrops fills the buffer during an outage and
// checks eviction is oldest-first, counted, and non-blocking.
func TestForwarderBoundedBufferDrops(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer dead.Close()

	f, err := NewForwarder(ForwarderConfig{
		Client:        apiclient.NewWithConfig(dead.URL, apiclient.Config{Retries: 1, RetryBackoff: time.Millisecond}),
		MaxBatch:      1000, // never size-kicked
		FlushInterval: time.Hour,
		MaxBuffer:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f.Commit(nil, edgeMeasurement(i, core.StateSuccess))
	}
	st := f.Stats()
	if st.Pending != 8 || st.Dropped != 12 || st.Observed != 20 {
		t.Fatalf("stats %+v", st)
	}
	// Closing against a dead upstream reports the stranded records.
	if err := f.Close(); err == nil {
		t.Fatal("Close succeeded with an unreachable upstream")
	}
}

// TestForwarderConcurrentClose races several Close calls: the first drains,
// the rest return without a double-close panic.
func TestForwarderConcurrentClose(t *testing.T) {
	upStore, _, upSrv := upstream(t)
	f, err := NewForwarder(ForwarderConfig{Upstream: upSrv.URL, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f.Commit(nil, edgeMeasurement(i, core.StateSuccess))
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = f.Close()
		}()
	}
	wg.Wait()
	if upStore.Len() != 10 {
		t.Fatalf("upstream has %d after concurrent Close, want 10", upStore.Len())
	}
}

// TestForwarderConcurrentCommits drives commits from many goroutines (the
// sharded store calls Commit from whichever shard lock serialized each
// mutation); run under -race by scripts/ci.sh.
func TestForwarderConcurrentCommits(t *testing.T) {
	upStore, _, upSrv := upstream(t)
	f, err := NewForwarder(ForwarderConfig{Upstream: upSrv.URL, MaxBatch: 32, FlushInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	edge := results.NewStore()
	edge.AddObserver(f)

	var wg sync.WaitGroup
	const workers, perWorker = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m := edgeMeasurement(w*perWorker+i, core.StateSuccess)
				if err := edge.Add(m); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if want := workers * perWorker; upStore.Len() != want {
		t.Fatalf("upstream has %d, want %d", upStore.Len(), want)
	}
}
