package federation

// Tests for binary federation: a forwarder whose SDK client opted into
// BinaryEncoding ships the live lane as encoded frames and the WAL tail as
// the verbatim bytes the segment files hold — and the merged upstream tier
// ends identical to what JSON forwarding produces.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	apiclient "encore/internal/api/client"
	"encore/internal/core"
	"encore/internal/results"
	"encore/internal/wire"
)

// TestForwarderBinaryEndToEnd runs the full lossless story over the binary
// transport: a pre-forwarder WAL backlog (shipped by the catch-up tail pass
// as verbatim frames), live commits, a buffer spill during an upstream
// outage, and recovery — every POST on the wire must carry the binary
// content type, and nothing may be dropped or re-encoded through JSON.
func TestForwarderBinaryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	upStore, _, upSrv := upstream(t)
	var posts, jsonPosts atomic.Uint64
	var down atomic.Bool
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			posts.Add(1)
			if !strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentTypeRecords) {
				jsonPosts.Add(1)
			}
		}
		if down.Load() {
			http.Error(w, "upstream down", http.StatusServiceUnavailable)
			return
		}
		upSrv.Config.Handler.ServeHTTP(w, r)
	}))
	defer gate.Close()

	// Backlog: records committed under the WAL before any forwarder exists.
	wal := openTestWAL(t, dir)
	edge := results.NewStore()
	edge.AddObserver(wal)
	const backlog, live, outage = 20, 20, 30
	for i := 0; i < backlog; i++ {
		if err := edge.Add(edgeMeasurement(i, core.StateSuccess)); err != nil {
			t.Fatal(err)
		}
	}

	f, err := NewForwarder(ForwarderConfig{
		Client: apiclient.NewWithConfig(gate.URL, apiclient.Config{
			BinaryEncoding: true, Retries: 1, RetryBackoff: time.Millisecond,
		}),
		MaxBatch:      8,
		FlushInterval: 2 * time.Millisecond,
		MaxBuffer:     8, // force a spill during the outage
		WAL:           wal,
	})
	if err != nil {
		t.Fatal(err)
	}
	edge.AddObserver(f)
	// The catch-up pass ships the backlog as verbatim WAL frames.
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if upStore.Len() != backlog {
		t.Fatalf("upstream has %d after catch-up, want %d", upStore.Len(), backlog)
	}

	// Live commits flow through the buffered lane.
	for i := backlog; i < backlog+live; i++ {
		if err := edge.Add(edgeMeasurement(i, core.StateInit)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Outage: the tiny buffer spills to the WAL tail; recovery re-ships the
	// spilled records as frames.
	down.Store(true)
	for i := backlog + live; i < backlog+live+outage; i++ {
		if err := edge.Add(edgeMeasurement(i, core.StateInit)); err != nil {
			t.Fatal(err)
		}
	}
	// Upgrade some live-phase records in place during the outage too.
	for i := backlog; i < backlog+5; i++ {
		if err := edge.Add(edgeMeasurement(i, core.StateFailure)); err != nil {
			t.Fatal(err)
		}
	}
	if st := f.Stats(); st.Spilled == 0 {
		t.Fatalf("expected a spill with MaxBuffer=8; stats %+v", st)
	}
	down.Store(false)
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	defer wal.Close()

	// The upstream tier must mirror the edge exactly.
	total := backlog + live + outage
	if upStore.Len() != total {
		t.Fatalf("upstream has %d records, want %d", upStore.Len(), total)
	}
	for _, want := range edge.All() {
		got, ok := upStore.Get(want.MeasurementID)
		if !ok || got != want {
			t.Fatalf("upstream %s diverged:\n got %+v\nwant %+v", want.MeasurementID, got, want)
		}
	}
	st := f.Stats()
	if st.Dropped != 0 {
		t.Fatalf("binary forwarder dropped %d records", st.Dropped)
	}
	if posts.Load() == 0 {
		t.Fatal("gate saw no POSTs")
	}
	if n := jsonPosts.Load(); n != 0 {
		t.Fatalf("%d of %d forward POSTs fell back to JSON", n, posts.Load())
	}
}

// TestForwarderBinaryDeadLettersDecodeFrames checks the frame path's lazy
// dead-letter decode: per-record rejections on a verbatim-frame batch still
// park the decoded record in the ring.
func TestForwarderBinaryDeadLettersDecodeFrames(t *testing.T) {
	dir := t.TempDir()
	upStore, _, upSrv := upstream(t)
	wal := openTestWAL(t, dir)
	defer wal.Close()
	edge := results.NewStore()
	edge.AddObserver(wal)
	// Commit the backlog first so the forwarder's initial catch-up pass — the
	// verbatim-frame path — is what ships it.
	if err := edge.Add(edgeMeasurement(0, core.StateSuccess)); err != nil {
		t.Fatal(err)
	}

	// An upstream that rejects index 0 of every batch.
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			upSrv.Config.Handler.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"accepted":0,"rejected":[{"index":0,"code":"invalid_submission","message":"synthetic"}]}`))
	}))
	defer reject.Close()

	f, err := NewForwarder(ForwarderConfig{
		Client: apiclient.NewWithConfig(reject.URL, apiclient.Config{
			BinaryEncoding: true, Retries: 1, RetryBackoff: time.Millisecond,
		}),
		FlushInterval: 2 * time.Millisecond,
		WAL:           wal,
	})
	if err != nil {
		t.Fatal(err)
	}
	edge.AddObserver(f)
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	dls := f.DeadLetters()
	if len(dls) != 1 {
		t.Fatalf("dead letters: %d, want 1", len(dls))
	}
	if dls[0].Code != "invalid_submission" || dls[0].Measurement.MeasurementID != "edge-0" {
		t.Fatalf("dead letter %+v did not decode its frame", dls[0])
	}
	if upStore.Len() != 0 {
		t.Fatal("rejecting upstream stored records")
	}
}
