// Package federation implements Encore's distributed-collectors topology:
// N edge collection servers each ingest their region's beacon traffic
// locally, and a Forwarder on each edge drains the store's commit-observer
// stream into batched POST /v2/submissions calls against one upstream
// aggregation-tier instance. The upstream (a collection server started with
// AllowAttributed) feeds its own store and incremental Aggregator, so the
// merged tier reaches the same DetectIncremental verdicts a single
// collector ingesting all the traffic would — the ROADMAP's
// distributed-collectors open item, built on the v2 API instead of a
// bespoke replication channel.
//
// The forwarder attaches to the edge store exactly like the Aggregator and
// WAL tiers do (results.Store.AddObserver), so both collectserver write
// paths — synchronous Accept and the batched async Ingester — feed it
// automatically. Commit buffers under a private mutex and never blocks the
// shard lock; a background sender ships batches with the SDK's retry and
// keeps unsent records queued across upstream outages.
package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	apiclient "encore/internal/api/client"
	"encore/internal/results"
)

// ErrForwarderClosed is returned by Flush after Close has completed.
var ErrForwarderClosed = errors.New("federation: forwarder closed")

// ForwarderConfig parameterizes a Forwarder. Zero fields fall back to
// defaults.
type ForwarderConfig struct {
	// Upstream is the aggregation-tier base URL (required unless Client is
	// set).
	Upstream string
	// Client overrides the SDK client used for upstream calls; nil builds
	// one from Upstream with default retry configuration.
	Client *apiclient.Client
	// MaxBatch caps measurements per POST (default 128).
	MaxBatch int
	// FlushInterval is how often buffered commits are shipped (default
	// 200ms). The interval, not the batch size, bounds edge-to-upstream
	// latency under light traffic.
	FlushInterval time.Duration
	// MaxBuffer bounds the in-memory commit buffer (default 1<<18 records).
	// When the upstream is down long enough to fill it, the oldest records
	// are dropped — in chunks of MaxBuffer/8, so eviction cost amortizes to
	// O(1) per commit — and counted in Stats.Dropped; an edge collector's
	// own store (and WAL, if attached) still has them, so a full resync
	// remains possible out of band.
	MaxBuffer int
}

// ForwarderStats reports a forwarder's lifetime counters.
type ForwarderStats struct {
	// Observed counts commits received from the store.
	Observed uint64
	// Forwarded counts records the upstream accepted.
	Forwarded uint64
	// Rejected counts records the upstream refused individually.
	Rejected uint64
	// Dropped counts records evicted from a full buffer during an upstream
	// outage.
	Dropped uint64
	// Batches counts successful upstream POSTs.
	Batches uint64
	// Pending counts records buffered but not yet acknowledged upstream.
	Pending int
	// LastError is the most recent upstream failure, nil after a success.
	LastError error
}

// Forwarder streams an edge collector's committed measurements to an
// upstream aggregation tier. It implements results.CommitObserver.
type Forwarder struct {
	client *apiclient.Client
	cfg    ForwarderConfig

	mu      sync.Mutex
	pending []results.Measurement
	// closing is set at the top of Close (so a concurrent Close cannot
	// close(done) twice); closed only once the final drain finished and
	// commits are refused.
	closing bool
	closed  bool

	// sendMu serializes flushOnce calls (the background sender and explicit
	// Flush callers), so batches reach the upstream in buffer order and a
	// measurement's insert can never overtake its upgrade.
	sendMu sync.Mutex

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	// observed and dropped are bumped from Commit, which runs under the
	// store shard lock on the ingest hot path — atomics, so a commit never
	// takes a second mutex (or contends with a Stats poll) there. The
	// sender-side counters below are only touched by flushOnce and Stats.
	observed atomic.Uint64
	dropped  atomic.Uint64

	statsMu   sync.Mutex
	forwarded uint64
	rejected  uint64
	batches   uint64
	lastErr   error
}

// NewForwarder creates a running forwarder.
func NewForwarder(cfg ForwarderConfig) (*Forwarder, error) {
	if cfg.Client == nil {
		if cfg.Upstream == "" {
			return nil, errors.New("federation: ForwarderConfig needs Upstream or Client")
		}
		cfg.Client = apiclient.New(cfg.Upstream)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 128
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 200 * time.Millisecond
	}
	if cfg.MaxBuffer <= 0 {
		cfg.MaxBuffer = 1 << 18
	}
	f := &Forwarder{
		client: cfg.Client,
		cfg:    cfg,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Commit implements results.CommitObserver: it records the committed
// measurement for forwarding. It runs under the store shard lock that
// serialized the commit, so it only appends to the buffer — never blocks,
// never performs I/O. In-place upgrades forward the upgraded record; the
// upstream store applies the same terminal-state-wins merge rule the edge
// applied, so replaying both the insert and the upgrade converges to the
// edge's final state regardless of batch boundaries.
func (f *Forwarder) Commit(_ *results.Measurement, cur results.Measurement) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	var dropped int
	if len(f.pending) >= f.cfg.MaxBuffer {
		// Evict the oldest records rather than stall the ingest path.
		// Eviction is chunked — one compaction sheds many records — so its
		// cost amortizes to O(1) per commit instead of an O(MaxBuffer)
		// memmove under the shard lock on every commit of a long outage.
		dropped = f.cfg.MaxBuffer / 8
		if dropped < 1 {
			dropped = 1
		}
		if dropped > len(f.pending) {
			dropped = len(f.pending)
		}
		n := copy(f.pending, f.pending[dropped:])
		f.pending = f.pending[:n]
	}
	f.pending = append(f.pending, cur)
	full := len(f.pending) >= f.cfg.MaxBatch
	f.mu.Unlock()

	f.observed.Add(1)
	if dropped > 0 {
		f.dropped.Add(uint64(dropped))
	}

	if full {
		select {
		case f.kick <- struct{}{}:
		default:
		}
	}
}

// run ships batches on size kicks and the flush timer until Close.
func (f *Forwarder) run() {
	defer f.wg.Done()
	ticker := time.NewTicker(f.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.done:
			return
		case <-f.kick:
		case <-ticker.C:
		}
		_ = f.flushOnce(context.Background())
	}
}

// flushOnce ships up to MaxBatch buffered records. On failure (after the
// SDK's retries) the records return to the head of the buffer, preserving
// per-measurement commit order, and the error is recorded — the next tick
// tries again, which is what rides out an upstream restart.
func (f *Forwarder) flushOnce(ctx context.Context) error {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	f.mu.Lock()
	if len(f.pending) == 0 {
		f.mu.Unlock()
		return nil
	}
	n := len(f.pending)
	if n > f.cfg.MaxBatch {
		n = f.cfg.MaxBatch
	}
	batch := make([]results.Measurement, n)
	copy(batch, f.pending[:n])
	f.pending = f.pending[:copy(f.pending, f.pending[n:])]
	f.mu.Unlock()

	resp, err := f.client.ForwardMeasurements(ctx, batch)

	f.statsMu.Lock()
	if err != nil {
		f.lastErr = err
	} else {
		f.lastErr = nil
		f.batches++
		f.forwarded += uint64(resp.Accepted)
		f.rejected += uint64(len(resp.Rejected))
	}
	f.statsMu.Unlock()

	if err != nil {
		// Put the batch back at the head so commit order per measurement
		// survives the outage.
		f.mu.Lock()
		f.pending = append(batch, f.pending...)
		f.mu.Unlock()
		return err
	}
	return nil
}

// drained reports whether the buffer is empty with no batch in flight: it
// waits for any ongoing send (sendMu) before reading the buffer, and a
// failed send re-queues its batch before releasing sendMu, so a true result
// means every observed commit was acknowledged upstream.
func (f *Forwarder) drained() (empty, closed bool) {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending) == 0, f.closed
}

// Flush synchronously ships everything buffered (including any batch a
// background send had in flight), returning the first upstream error.
// Callers that need the upstream current (tests, orderly shutdown) use it;
// steady-state forwarding never needs it.
func (f *Forwarder) Flush(ctx context.Context) error {
	for {
		empty, closed := f.drained()
		if closed {
			return ErrForwarderClosed
		}
		if empty {
			return nil
		}
		if err := f.flushOnce(ctx); err != nil {
			return err
		}
	}
}

// Close stops the background sender and attempts one final drain with the
// given timeout budget per batch; records that still cannot reach the
// upstream are reported via the returned error and remain counted in
// Stats.Pending.
func (f *Forwarder) Close() error {
	f.mu.Lock()
	if f.closing {
		f.mu.Unlock()
		return nil
	}
	f.closing = true
	f.mu.Unlock()

	close(f.done)
	f.wg.Wait()

	// Final drain, then refuse further commits.
	var err error
	for {
		empty, _ := f.drained()
		if empty {
			break
		}
		if err = f.flushOnce(context.Background()); err != nil {
			break
		}
	}
	f.mu.Lock()
	f.closed = true
	remaining := len(f.pending)
	f.mu.Unlock()
	if err != nil {
		return fmt.Errorf("federation: close left %d records unforwarded: %w", remaining, err)
	}
	if remaining > 0 {
		// A commit raced the final drain: it landed after the last empty
		// check but before closed was set, and the sender is already
		// stopped. Report it rather than silently stranding it (the edge's
		// own store still has the record).
		return fmt.Errorf("federation: close left %d records unforwarded (committed during shutdown)", remaining)
	}
	return nil
}

// Stats returns the forwarder's lifetime counters.
func (f *Forwarder) Stats() ForwarderStats {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	f.mu.Lock()
	pending := len(f.pending)
	f.mu.Unlock()
	return ForwarderStats{
		Observed:  f.observed.Load(),
		Forwarded: f.forwarded,
		Rejected:  f.rejected,
		Dropped:   f.dropped.Load(),
		Batches:   f.batches,
		Pending:   pending,
		LastError: f.lastErr,
	}
}
