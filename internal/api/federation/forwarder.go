// Package federation implements Encore's distributed-collectors topology:
// N edge collection servers each ingest their region's beacon traffic
// locally, and a Forwarder on each edge drains the store's commit-observer
// stream into batched POST /v2/submissions calls against one upstream
// aggregation-tier instance. The upstream (a collection server started with
// AllowAttributed) feeds its own store and incremental Aggregator, so the
// merged tier reaches the same DetectIncremental verdicts a single
// collector ingesting all the traffic would — the ROADMAP's
// distributed-collectors open item, built on the v2 API instead of a
// bespoke replication channel.
//
// The forwarder attaches to the edge store exactly like the Aggregator and
// WAL tiers do (results.Store.AddObserver), so both collectserver write
// paths — synchronous Accept and the batched async Ingester — feed it
// automatically. With a WAL attached (ForwarderConfig.WAL) forwarding is
// lossless and resumable: the forwarder persists the highest contiguously
// acknowledged commit-stream position in a tiny fsynced cursor file beside
// the WAL, falls back to tailing the WAL whenever its in-memory buffer
// cannot hold an outage, and on restart resumes from the cursor — an edge
// crash or an arbitrarily long upstream outage loses nothing. It also
// honors the upstream's explicit backpressure (api.LoadSignal and
// Retry-After), widening its flush window when the upstream is loaded
// instead of hammering it in lockstep with every other edge.
package federation

import (
	"context"
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"encore/internal/api"
	apiclient "encore/internal/api/client"
	"encore/internal/results"
	"encore/internal/wire"
)

// ErrForwarderClosed is returned by Flush after Close has completed.
var ErrForwarderClosed = errors.New("federation: forwarder closed")

// ForwarderConfig parameterizes a Forwarder. Zero fields fall back to
// defaults.
type ForwarderConfig struct {
	// Upstream is the aggregation-tier base URL (required unless Client is
	// set).
	Upstream string
	// Client overrides the SDK client used for upstream calls; nil builds
	// one from Upstream with default retry configuration.
	Client *apiclient.Client
	// MaxBatch caps measurements per POST (default 128).
	MaxBatch int
	// FlushInterval is how often buffered commits are shipped (default
	// 200ms). The interval, not the batch size, bounds edge-to-upstream
	// latency under light traffic. It is the floor of a dynamic window: the
	// upstream's load signal and send failures widen the effective interval
	// up to MaxFlushInterval, and a healthy unloaded response snaps it back.
	FlushInterval time.Duration
	// MaxFlushInterval caps the widened flush window (default 10× the
	// flush interval).
	MaxFlushInterval time.Duration
	// MaxBuffer bounds the in-memory commit buffer (default 1<<18 records).
	// What happens when an outage fills it depends on WAL: with a WAL
	// attached the buffer spills — the forwarder switches to tailing the
	// WAL, which still has every record past the cursor, so nothing is lost
	// (Stats.Spilled counts the hand-off). Without a WAL the oldest records
	// are dropped — in chunks of MaxBuffer/8, so eviction cost amortizes to
	// O(1) per commit — and counted in Stats.Dropped.
	MaxBuffer int
	// WAL, when set, makes forwarding lossless and resumable: the forwarder
	// tracks its progress as a commit-stream position, persists it in a
	// cursor file beside the WAL (CursorPath), replays the WAL from the
	// cursor on restart, and registers a compaction-retention floor so
	// Compact never folds away a record the upstream has not acknowledged.
	// Attach the WAL to the store before the forwarder, and the forwarder
	// via AddObserver (it implements results.CommitStreamObserver, so the
	// store hands it each commit's stream position).
	WAL *results.WAL
	// CursorPath overrides where the cursor file lives (default
	// forward-cursor.json inside the WAL directory). Ignored without WAL.
	CursorPath string
	// DeadLetterLimit bounds the ring of most recent permanently rejected
	// records kept for inspection via DeadLetters (default 64).
	DeadLetterLimit int
	// Logf receives operational log lines (dead-letter batches, cursor
	// persistence failures); nil uses the standard logger.
	Logf func(format string, args ...any)
}

// DeadLetter is one record the upstream permanently rejected. The forwarder
// acknowledges it (the ordered stream moves on — one poison record must not
// wedge forwarding forever) and parks it here instead of re-queueing it.
type DeadLetter struct {
	Measurement results.Measurement
	Code        string
	Message     string
}

// ForwarderStats reports a forwarder's lifetime counters.
type ForwarderStats struct {
	// Observed counts commits received from the store.
	Observed uint64
	// Forwarded counts records the upstream accepted.
	Forwarded uint64
	// Rejected counts records the upstream refused individually; they are
	// dead-lettered, not re-queued. RejectedByCode breaks them down by typed
	// error code.
	Rejected       uint64
	RejectedByCode map[string]uint64
	// Dropped counts records evicted from a full buffer during an upstream
	// outage with no WAL to fall back on. With a WAL attached it stays zero.
	Dropped uint64
	// Spilled counts records handed off from the in-memory buffer to the
	// WAL-tailing catch-up path when the buffer filled. Unlike Dropped they
	// are not lost — the catch-up pass re-reads them from the WAL.
	Spilled uint64
	// Batches counts successful upstream POSTs.
	Batches uint64
	// Pending counts records buffered but not yet acknowledged upstream.
	Pending int
	// AckedCursor is the highest contiguously acknowledged commit-stream
	// position (zero without a WAL).
	AckedCursor uint64
	// CatchingUp reports whether the forwarder is in WAL-tailing catch-up
	// mode rather than live buffer mode.
	CatchingUp bool
	// FlushInterval is the current (possibly widened) flush window.
	FlushInterval time.Duration
	// LastError is the most recent upstream failure, nil after a success.
	LastError error
}

// entry is one buffered commit: the measurement plus its commit-stream
// position (zero for commits observed without position, e.g. via the plain
// CommitObserver path in WAL-less mode).
type entry struct {
	cseq uint64
	m    results.Measurement
}

// Forwarder streams an edge collector's committed measurements to an
// upstream aggregation tier. It implements results.CommitStreamObserver
// (and the plain CommitObserver for WAL-less use).
type Forwarder struct {
	client     *apiclient.Client
	cfg        ForwarderConfig
	cursorPath string

	mu      sync.Mutex
	pending []entry
	// catchingUp: the buffer overflowed (or the forwarder just started with
	// a WAL behind its cursor) and the WAL tail, not the buffer, is the
	// source of records to ship. While set, positioned commits are not
	// buffered — the WAL already has them and the next tail pass reads them.
	catchingUp bool
	// closing is set at the top of Close (so a concurrent Close cannot
	// close(done) twice); closed only once the final drain finished and
	// commits are refused.
	closing bool
	closed  bool

	// sendMu serializes the send paths (background sender, explicit Flush,
	// catch-up passes), so batches reach the upstream in order and a
	// measurement's insert can never overtake its upgrade. acks is guarded
	// by it: all acknowledgment happens on the send side.
	sendMu sync.Mutex
	acks   *ackTracker

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	// observed/dropped/spilled are bumped from the commit path, which runs
	// under the store shard lock on the ingest hot path — atomics, so a
	// commit never takes a second mutex there. ackedCursor mirrors
	// acks.cursor() for lock-free reads (Stats, the WAL retention floor).
	// interval is the current flush window in nanoseconds.
	observed    atomic.Uint64
	dropped     atomic.Uint64
	spilled     atomic.Uint64
	ackedCursor atomic.Uint64
	interval    atomic.Int64

	statsMu        sync.Mutex
	forwarded      uint64
	rejected       uint64
	batches        uint64
	rejectedByCode map[string]uint64
	deadLetters    []DeadLetter
	lastErr        error
}

// NewForwarder creates a running forwarder. With cfg.WAL set it loads the
// persisted cursor and starts in catch-up mode, immediately replaying any
// records a previous run committed but never got acknowledged.
func NewForwarder(cfg ForwarderConfig) (*Forwarder, error) {
	if cfg.Client == nil {
		if cfg.Upstream == "" {
			return nil, errors.New("federation: ForwarderConfig needs Upstream or Client")
		}
		cfg.Client = apiclient.New(cfg.Upstream)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 128
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 200 * time.Millisecond
	}
	if cfg.MaxFlushInterval <= 0 {
		cfg.MaxFlushInterval = 10 * cfg.FlushInterval
	}
	if cfg.MaxFlushInterval < cfg.FlushInterval {
		cfg.MaxFlushInterval = cfg.FlushInterval
	}
	if cfg.MaxBuffer <= 0 {
		cfg.MaxBuffer = 1 << 18
	}
	if cfg.DeadLetterLimit <= 0 {
		cfg.DeadLetterLimit = 64
	}
	f := &Forwarder{
		client: cfg.Client,
		cfg:    cfg,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	f.interval.Store(int64(cfg.FlushInterval))
	cursor := uint64(0)
	if cfg.WAL != nil {
		f.cursorPath = cfg.CursorPath
		if f.cursorPath == "" {
			f.cursorPath = filepath.Join(cfg.WAL.Dir(), "forward-cursor.json")
		}
		var err error
		cursor, err = loadCursor(f.cursorPath)
		if err != nil {
			return nil, err
		}
		// Catch up from the cursor before going live: a previous run may
		// have committed records it never shipped. An empty WAL makes this a
		// no-op pass.
		f.catchingUp = true
		f.kick <- struct{}{}
	}
	f.acks = newAckTracker(cursor)
	f.ackedCursor.Store(cursor)
	if cfg.WAL != nil {
		// Compaction must not fold away records the upstream has not
		// acknowledged; the floor follows the cursor.
		cfg.WAL.SetRetention(f.ackedCursor.Load)
	}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Commit implements the plain results.CommitObserver: the WAL-less path,
// where commits carry no stream position and durability is best-effort
// (Stats.Dropped counts outage losses). A store dispatches CommitStream
// instead when the forwarder is attached via AddObserver.
func (f *Forwarder) Commit(_ *results.Measurement, cur results.Measurement) {
	f.enqueue(0, cur)
}

// CommitStream implements results.CommitStreamObserver: it records the
// committed measurement, tagged with its commit-stream position, for
// forwarding. It runs under the store shard lock that serialized the commit,
// so it only appends to the buffer — never blocks, never performs I/O.
// In-place upgrades forward the upgraded record; the upstream store applies
// the same terminal-state-wins merge rule the edge applied, so replaying
// both the insert and the upgrade — or re-forwarding either after a crash —
// converges to the edge's final state regardless of batch boundaries.
func (f *Forwarder) CommitStream(commitSeq, _ uint64, _ *results.Measurement, cur results.Measurement) {
	f.enqueue(commitSeq, cur)
}

// enqueue buffers one commit (or, in catch-up mode with a WAL holding the
// record, deliberately doesn't).
func (f *Forwarder) enqueue(cseq uint64, cur results.Measurement) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	if f.catchingUp && cseq != 0 {
		// The WAL has this record past the cursor; the tail pass ships it.
		f.mu.Unlock()
		f.observed.Add(1)
		return
	}
	var dropped, spilled int
	if len(f.pending) >= f.cfg.MaxBuffer {
		if f.cfg.WAL != nil && cseq != 0 {
			// Spill to the WAL tail: every positioned record in the buffer
			// (and this one) is already durable past the cursor, so hand the
			// whole backlog to catch-up mode instead of dropping anything.
			kept := f.pending[:0]
			for _, e := range f.pending {
				if e.cseq == 0 {
					kept = append(kept, e) // not WAL-backed; must stay
				} else {
					spilled++
				}
			}
			f.pending = kept
			f.catchingUp = true
			f.mu.Unlock()
			f.observed.Add(1)
			f.spilled.Add(uint64(spilled + 1)) // +1: the record being committed
			select {
			case f.kick <- struct{}{}:
			default:
			}
			return
		}
		// No WAL to fall back on: evict the oldest records rather than
		// stall the ingest path. Eviction is chunked — one compaction sheds
		// many records — so its cost amortizes to O(1) per commit instead of
		// an O(MaxBuffer) memmove under the shard lock on every commit of a
		// long outage.
		dropped = f.cfg.MaxBuffer / 8
		if dropped < 1 {
			dropped = 1
		}
		if dropped > len(f.pending) {
			dropped = len(f.pending)
		}
		n := copy(f.pending, f.pending[dropped:])
		f.pending = f.pending[:n]
	}
	f.pending = append(f.pending, entry{cseq: cseq, m: cur})
	full := len(f.pending) >= f.cfg.MaxBatch
	f.mu.Unlock()

	f.observed.Add(1)
	if dropped > 0 {
		f.dropped.Add(uint64(dropped))
	}

	if full {
		select {
		case f.kick <- struct{}{}:
		default:
		}
	}
}

// curInterval returns the current (possibly widened) flush window.
func (f *Forwarder) curInterval() time.Duration {
	return time.Duration(f.interval.Load())
}

// noteLoad resets the flush window after a successful batch: back to the
// configured floor, or up to the upstream's suggested interval when its load
// signal asks the edge to slow down.
func (f *Forwarder) noteLoad(load *api.LoadSignal) {
	next := f.cfg.FlushInterval
	if load != nil && load.SuggestedFlushMillis > 0 {
		if s := time.Duration(load.SuggestedFlushMillis) * time.Millisecond; s > next {
			next = s
		}
	}
	if next > f.cfg.MaxFlushInterval {
		next = f.cfg.MaxFlushInterval
	}
	f.interval.Store(int64(next))
}

// widenInterval doubles the flush window after a failed send, up to the cap
// — the edge-side half of riding out an upstream outage without a retry
// storm (the SDK's per-request jittered backoff is the other half).
func (f *Forwarder) widenInterval() {
	next := 2 * f.curInterval()
	if next > f.cfg.MaxFlushInterval {
		next = f.cfg.MaxFlushInterval
	}
	f.interval.Store(int64(next))
}

// run ships batches on size kicks and the flush timer until Close. The
// timer re-arms with the current dynamic window, so upstream load advice and
// failure backoff take effect on the next cycle.
func (f *Forwarder) run() {
	defer f.wg.Done()
	timer := time.NewTimer(f.curInterval())
	defer timer.Stop()
	for {
		select {
		case <-f.done:
			return
		case <-f.kick:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-timer.C:
		}
		_ = f.step(context.Background())
		timer.Reset(f.curInterval())
	}
}

// step performs one unit of forwarding work: a catch-up round when tailing
// the WAL, one batch flush otherwise. Failures widen the flush window.
func (f *Forwarder) step(ctx context.Context) error {
	f.mu.Lock()
	cu := f.catchingUp
	f.mu.Unlock()
	var err error
	if cu {
		err = f.catchUp(ctx)
	} else {
		err = f.flushOnce(ctx)
	}
	if err != nil {
		f.widenInterval()
	}
	return err
}

// sendBatch ships one batch upstream and, on success, acknowledges every
// record in it — including per-index rejections, which are dead-lettered
// (counted, logged once per batch, kept in a bounded ring) rather than
// re-queued, so one poison record cannot wedge the ordered stream. Callers
// hold sendMu.
func (f *Forwarder) sendBatch(ctx context.Context, batch []entry) error {
	ms := make([]results.Measurement, len(batch))
	for i, e := range batch {
		ms[i] = e.m
	}
	resp, err := f.client.ForwardMeasurements(ctx, ms)
	if err != nil {
		f.statsMu.Lock()
		f.lastErr = err
		f.statsMu.Unlock()
		return err
	}
	f.recordBatchOutcome(resp, len(batch), func(i int) results.Measurement { return batch[i].m })
	f.ackBatch(len(batch), func(i int) uint64 { return batch[i].cseq })
	f.noteLoad(resp.Load)
	return nil
}

// recordBatchOutcome folds one successful POST's response into the stats and
// dead-letter ring. mAt resolves a rejected index to its record — lazily, so
// the zero-re-encode frame path only decodes the (rare) rejects.
func (f *Forwarder) recordBatchOutcome(resp *api.BatchSubmitResponse, batchLen int, mAt func(int) results.Measurement) {
	f.statsMu.Lock()
	f.lastErr = nil
	f.batches++
	f.forwarded += uint64(resp.Accepted)
	f.rejected += uint64(len(resp.Rejected))
	var rejSummary map[string]int
	if len(resp.Rejected) > 0 {
		rejSummary = make(map[string]int)
		if f.rejectedByCode == nil {
			f.rejectedByCode = make(map[string]uint64)
		}
		for _, rej := range resp.Rejected {
			f.rejectedByCode[rej.Code]++
			rejSummary[rej.Code]++
			dl := DeadLetter{Code: rej.Code, Message: rej.Message}
			if rej.Index >= 0 && rej.Index < batchLen {
				dl.Measurement = mAt(rej.Index)
			}
			f.deadLetters = append(f.deadLetters, dl)
			if len(f.deadLetters) > f.cfg.DeadLetterLimit {
				f.deadLetters = f.deadLetters[len(f.deadLetters)-f.cfg.DeadLetterLimit:]
			}
		}
	}
	f.statsMu.Unlock()
	if rejSummary != nil {
		f.logf("federation: upstream rejected %d of %d records (by code: %v); dead-lettered, not re-queued",
			len(resp.Rejected), batchLen, rejSummary)
	}
}

// ackBatch acknowledges a whole sent batch (rejected records included: they
// are terminally disposed of) and persists the cursor when the contiguous
// prefix advanced.
func (f *Forwarder) ackBatch(n int, cseqAt func(int) uint64) {
	advanced := false
	for i := 0; i < n; i++ {
		if c := cseqAt(i); c != 0 && f.acks.ack(c) {
			advanced = true
		}
	}
	if advanced {
		cur := f.acks.cursor()
		f.ackedCursor.Store(cur)
		if f.cursorPath != "" {
			if err := saveCursor(f.cursorPath, cur); err != nil {
				// Not fatal: a stale cursor only means re-forwarding work
				// the upstream merges idempotently. But say so — a cursor
				// that never persists degrades every restart to a full
				// replay.
				f.logf("federation: persisting forward cursor: %v", err)
			}
		}
	}
}

// sendFrames is sendBatch for verbatim WAL frames: the batch is one
// concatenated frame stream (offsets[i] marking frame i's start, cseqs[i]
// its commit position), POSTed exactly as the segment file holds it. Dead
// letters decode their frame lazily. Callers hold sendMu.
func (f *Forwarder) sendFrames(ctx context.Context, frames []byte, offsets []int, cseqs []uint64) error {
	resp, err := f.client.ForwardRecordFrames(ctx, frames)
	if err != nil {
		f.statsMu.Lock()
		f.lastErr = err
		f.statsMu.Unlock()
		return err
	}
	f.recordBatchOutcome(resp, len(cseqs), func(i int) results.Measurement {
		end := len(frames)
		if i+1 < len(offsets) {
			end = offsets[i+1]
		}
		if _, _, rec, err := wire.DecodeRecord(frames[offsets[i]+wire.FrameHeaderLen : end]); err == nil {
			return results.Measurement(rec)
		}
		return results.Measurement{}
	})
	f.ackBatch(len(cseqs), func(i int) uint64 { return cseqs[i] })
	f.noteLoad(resp.Load)
	return nil
}

// flushOnce ships up to MaxBatch buffered records. On failure (after the
// SDK's retries) the records return to the head of the buffer, preserving
// per-measurement commit order, and the error is recorded — the next (now
// widened) tick tries again, which is what rides out an upstream restart.
func (f *Forwarder) flushOnce(ctx context.Context) error {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	f.mu.Lock()
	if len(f.pending) == 0 {
		f.mu.Unlock()
		return nil
	}
	n := len(f.pending)
	if n > f.cfg.MaxBatch {
		n = f.cfg.MaxBatch
	}
	batch := make([]entry, n)
	copy(batch, f.pending[:n])
	f.pending = f.pending[:copy(f.pending, f.pending[n:])]
	f.mu.Unlock()

	if err := f.sendBatch(ctx, batch); err != nil {
		// Put the batch back at the head so commit order per measurement
		// survives the outage.
		f.mu.Lock()
		f.pending = append(batch, f.pending...)
		f.mu.Unlock()
		return err
	}
	return nil
}

// tailPass runs one point-in-time pass over the WAL tail, shipping every
// record past the cursor that is not yet acknowledged, in MaxBatch batches.
// It returns how many records it shipped. Caller holds sendMu. With a binary
// upstream client it ships the tail as verbatim frames instead of decoding.
func (f *Forwarder) tailPass(ctx context.Context) (int, error) {
	if f.client.BinaryEncoding() {
		return f.tailPassFrames(ctx)
	}
	batch := make([]entry, 0, f.cfg.MaxBatch)
	shipped := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := f.sendBatch(ctx, batch); err != nil {
			return err
		}
		shipped += len(batch)
		batch = batch[:0]
		return nil
	}
	err := f.cfg.WAL.ReadRecords(f.acks.cursor(), func(cseq uint64, m results.Measurement) error {
		if f.acks.acked(cseq) {
			return nil // acked out of order above the cursor on an earlier pass
		}
		batch = append(batch, entry{cseq: cseq, m: m})
		if len(batch) >= f.cfg.MaxBatch {
			return flush()
		}
		return nil
	})
	if err != nil {
		return shipped, err
	}
	return shipped, flush()
}

// tailPassFrames is tailPass on the zero-re-encode path: the WAL tail ships
// as the exact CRC-framed bytes the segment files hold — no decode, no
// re-serialization, the frames the edge already paid to write are the frames
// the upstream receives. Caller holds sendMu.
func (f *Forwarder) tailPassFrames(ctx context.Context) (int, error) {
	bufp := wire.GetBuffer()
	frames := *bufp
	defer func() {
		*bufp = frames
		wire.PutBuffer(bufp)
	}()
	offsets := make([]int, 0, f.cfg.MaxBatch)
	cseqs := make([]uint64, 0, f.cfg.MaxBatch)
	shipped := 0
	flush := func() error {
		if len(cseqs) == 0 {
			return nil
		}
		if err := f.sendFrames(ctx, frames, offsets, cseqs); err != nil {
			return err
		}
		shipped += len(cseqs)
		frames, offsets, cseqs = frames[:0], offsets[:0], cseqs[:0]
		return nil
	}
	err := f.cfg.WAL.ReadRecordFrames(f.acks.cursor(), func(cseq uint64, frame []byte) error {
		if f.acks.acked(cseq) {
			return nil // acked out of order above the cursor on an earlier pass
		}
		offsets = append(offsets, len(frames))
		frames = append(frames, frame...)
		cseqs = append(cseqs, cseq)
		if len(cseqs) >= f.cfg.MaxBatch {
			return flush()
		}
		return nil
	})
	if err != nil {
		return shipped, err
	}
	return shipped, flush()
}

// catchUp drains the WAL tail until a pass finds nothing new, then flips
// back to live buffering. The flip happens before one final verification
// pass: a commit landing between the empty pass and the flip is appended to
// the WAL but not the buffer, and the final pass is what picks it up (a
// commit after the flip is buffered normally; if the final pass reads it too
// the upstream's idempotent merge absorbs the duplicate). If the final pass
// fails, catch-up mode resumes so the records stay WAL-covered.
func (f *Forwarder) catchUp(ctx context.Context) error {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	for {
		n, err := f.tailPass(ctx)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
	}
	f.mu.Lock()
	f.catchingUp = false
	f.mu.Unlock()
	if _, err := f.tailPass(ctx); err != nil {
		f.mu.Lock()
		f.catchingUp = true
		f.mu.Unlock()
		return err
	}
	return nil
}

// drained reports whether the buffer is empty with no batch in flight: it
// waits for any ongoing send (sendMu) before reading the buffer, and a
// failed send re-queues its batch before releasing sendMu, so a true result
// means every observed commit was acknowledged upstream.
func (f *Forwarder) drained() (empty, closed bool) {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending) == 0 && !f.catchingUp, f.closed
}

// Flush synchronously ships everything outstanding — completing any WAL
// catch-up, then draining the buffer (including any batch a background send
// had in flight) — returning the first upstream error. Callers that need
// the upstream current (tests, orderly shutdown) use it; steady-state
// forwarding never needs it.
func (f *Forwarder) Flush(ctx context.Context) error {
	for {
		f.mu.Lock()
		cu, closed := f.catchingUp, f.closed
		f.mu.Unlock()
		if closed {
			return ErrForwarderClosed
		}
		if cu {
			if err := f.catchUp(ctx); err != nil {
				return err
			}
			continue
		}
		empty, closed := f.drained()
		if closed {
			return ErrForwarderClosed
		}
		if empty {
			return nil
		}
		if err := f.flushOnce(ctx); err != nil {
			return err
		}
	}
}

// Close stops the background sender and attempts one final drain; records
// that still cannot reach the upstream are reported via the returned error
// and remain counted in Stats.Pending — and, with a WAL attached, remain
// past the persisted cursor, so the next run's catch-up forwards them.
func (f *Forwarder) Close() error {
	f.mu.Lock()
	if f.closing {
		f.mu.Unlock()
		return nil
	}
	f.closing = true
	f.mu.Unlock()

	close(f.done)
	f.wg.Wait()

	// Final drain, then refuse further commits.
	var err error
	for {
		f.mu.Lock()
		cu := f.catchingUp
		f.mu.Unlock()
		if cu {
			if err = f.catchUp(context.Background()); err != nil {
				break
			}
			continue
		}
		empty, _ := f.drained()
		if empty {
			break
		}
		if err = f.flushOnce(context.Background()); err != nil {
			break
		}
	}
	f.mu.Lock()
	f.closed = true
	remaining := len(f.pending)
	cu := f.catchingUp
	f.mu.Unlock()
	if err != nil {
		return fmt.Errorf("federation: close left %d records unforwarded: %w", remaining, err)
	}
	if remaining > 0 || cu {
		// A commit raced the final drain: it landed after the last empty
		// check but before closed was set, and the sender is already
		// stopped. Report it rather than silently stranding it (the edge's
		// own store still has the record, and a WAL-backed forwarder
		// resumes it from the cursor on the next run).
		return fmt.Errorf("federation: close left %d records unforwarded (committed during shutdown)", remaining)
	}
	return nil
}

// Stop halts the forwarder immediately, without the final drain Close
// performs: nothing further is sent or acknowledged, and the cursor file
// stays wherever the last acknowledged batch put it. It is the crash
// simulation hook for kill-and-restart tests — everything past the cursor
// must survive in the WAL for the next run to resume from.
func (f *Forwarder) Stop() {
	f.mu.Lock()
	if f.closing {
		f.mu.Unlock()
		return
	}
	f.closing = true
	f.closed = true
	f.mu.Unlock()
	close(f.done)
	f.wg.Wait()
}

// logf routes an operational log line.
func (f *Forwarder) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// DeadLetters returns a copy of the most recent permanently rejected
// records (bounded by ForwarderConfig.DeadLetterLimit).
func (f *Forwarder) DeadLetters() []DeadLetter {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	out := make([]DeadLetter, len(f.deadLetters))
	copy(out, f.deadLetters)
	return out
}

// SpilledCount, DroppedCount, and DeadLetterCount are the health-probe
// accessors collectserver's /v2/healthz reads through its structural
// ForwarderHealth interface (methods returning builtins keep collectserver
// from importing this package). Spilled is buffer overflow absorbed by the
// WAL tail (lossless); Dropped is records lost outright (only possible
// without a WAL); DeadLetterCount is the current dead-letter ring size.
func (f *Forwarder) SpilledCount() uint64 { return f.spilled.Load() }

// DroppedCount returns how many records were dropped un-forwarded.
func (f *Forwarder) DroppedCount() uint64 { return f.dropped.Load() }

// DeadLetterCount returns the current size of the dead-letter ring.
func (f *Forwarder) DeadLetterCount() int {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	return len(f.deadLetters)
}

// Stats returns the forwarder's lifetime counters.
func (f *Forwarder) Stats() ForwarderStats {
	f.statsMu.Lock()
	var byCode map[string]uint64
	if len(f.rejectedByCode) > 0 {
		byCode = make(map[string]uint64, len(f.rejectedByCode))
		for k, v := range f.rejectedByCode {
			byCode[k] = v
		}
	}
	st := ForwarderStats{
		Forwarded:      f.forwarded,
		Rejected:       f.rejected,
		RejectedByCode: byCode,
		Batches:        f.batches,
		LastError:      f.lastErr,
	}
	f.statsMu.Unlock()
	f.mu.Lock()
	st.Pending = len(f.pending)
	st.CatchingUp = f.catchingUp
	f.mu.Unlock()
	st.Observed = f.observed.Load()
	st.Dropped = f.dropped.Load()
	st.Spilled = f.spilled.Load()
	st.AckedCursor = f.ackedCursor.Load()
	st.FlushInterval = f.curInterval()
	return st
}

var (
	_ results.CommitObserver       = (*Forwarder)(nil)
	_ results.CommitStreamObserver = (*Forwarder)(nil)
)
