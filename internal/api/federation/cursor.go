package federation

// The forward cursor: the durable record of how far up the edge store's
// commit stream the upstream has acknowledged. It is the piece that makes
// forwarding resumable — after a crash the forwarder replays the WAL from
// the cursor instead of starting from an empty in-memory buffer, so an edge
// outage of any length loses nothing the WAL kept.

import (
	"encoding/json"
	"fmt"
	"os"
)

// cursorFileVersion is the on-disk cursor format version.
const cursorFileVersion = 1

// cursorFile is the JSON persisted beside the WAL. It is deliberately tiny:
// one acknowledged commit-stream position, rewritten (atomically, fsynced)
// each time the contiguous acknowledged prefix advances.
type cursorFile struct {
	Version int    `json:"version"`
	Acked   uint64 `json:"acked_commit_seq"`
}

// loadCursor reads the persisted cursor; a missing file is position zero
// (nothing acknowledged yet), which is the correct cold-start value.
func loadCursor(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var c cursorFile
	if err := json.Unmarshal(data, &c); err != nil {
		return 0, fmt.Errorf("federation: corrupt cursor file %s: %w", path, err)
	}
	return c.Acked, nil
}

// saveCursor persists the cursor with the standard tmp + fsync + rename
// dance, so a crash mid-save leaves either the old cursor or the new one,
// never a torn file. A stale (old) cursor is always safe: resuming from it
// re-forwards records the upstream already merged idempotently.
func saveCursor(path string, acked uint64) error {
	data, err := json.Marshal(cursorFile{Version: cursorFileVersion, Acked: acked})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ackTracker maintains the contiguous acknowledged prefix of the commit
// stream. Commit-stream positions are dense (the store assigns them from one
// counter), but acknowledgments arrive slightly out of order: positions are
// assigned under per-shard store locks, so a commit on one shard can be
// buffered, shipped, and acked before a numerically earlier commit on
// another shard even reaches the buffer — and a catch-up pass reads WAL
// shards sequentially, scattering positions further. The tracker therefore
// advances a low-water mark only through positions actually acknowledged,
// holding the out-of-order remainder in a set; the cursor never jumps over a
// position that might still be unsent.
type ackTracker struct {
	lwm   uint64 // every position <= lwm is acknowledged
	above map[uint64]struct{}
}

func newAckTracker(lwm uint64) *ackTracker {
	return &ackTracker{lwm: lwm, above: make(map[uint64]struct{})}
}

// ack records position cseq as acknowledged and reports whether the
// contiguous low-water mark advanced.
func (t *ackTracker) ack(cseq uint64) bool {
	if cseq <= t.lwm {
		return false
	}
	t.above[cseq] = struct{}{}
	advanced := false
	for {
		if _, ok := t.above[t.lwm+1]; !ok {
			break
		}
		delete(t.above, t.lwm+1)
		t.lwm++
		advanced = true
	}
	return advanced
}

// acked reports whether position cseq has been acknowledged.
func (t *ackTracker) acked(cseq uint64) bool {
	if cseq <= t.lwm {
		return true
	}
	_, ok := t.above[cseq]
	return ok
}

// cursor returns the contiguous acknowledged prefix's upper bound.
func (t *ackTracker) cursor() uint64 { return t.lwm }
