package federation

// Tests for the WAL-resumable half of the forwarder: the ack tracker and
// cursor file underneath it, spill-to-WAL instead of dropping, resuming from
// the persisted cursor after a crash (Stop), dead-lettering of per-record
// rejections, and the upstream load signal widening the flush window before
// anything is dropped or dead-lettered.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"encore/internal/api"
	apiclient "encore/internal/api/client"
	"encore/internal/core"
	"encore/internal/results"
)

func TestAckTrackerContiguousAdvance(t *testing.T) {
	tr := newAckTracker(0)
	if tr.cursor() != 0 {
		t.Fatalf("fresh tracker cursor = %d, want 0", tr.cursor())
	}
	// Out-of-order acks above the low-water mark must not move the cursor.
	if tr.ack(3) {
		t.Fatal("ack(3) advanced the cursor past unacked 1,2")
	}
	if tr.ack(2) {
		t.Fatal("ack(2) advanced the cursor past unacked 1")
	}
	if tr.cursor() != 0 {
		t.Fatalf("cursor = %d after acks {2,3}, want 0", tr.cursor())
	}
	if !tr.acked(3) || tr.acked(1) {
		t.Fatal("acked() wrong: want 3 acked, 1 not")
	}
	// Acking the gap releases the whole contiguous run.
	if !tr.ack(1) {
		t.Fatal("ack(1) did not advance")
	}
	if tr.cursor() != 3 {
		t.Fatalf("cursor = %d after ack(1), want 3", tr.cursor())
	}
	// Duplicate and below-cursor acks are no-ops.
	if tr.ack(2) || tr.ack(3) {
		t.Fatal("re-ack below cursor reported an advance")
	}
	if !tr.ack(4) || tr.cursor() != 4 {
		t.Fatalf("ack(4): cursor = %d, want 4", tr.cursor())
	}
}

func TestCursorFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "forward-cursor.json")
	// Missing file is position zero — the cold-start value.
	got, err := loadCursor(path)
	if err != nil || got != 0 {
		t.Fatalf("loadCursor(missing) = %d, %v; want 0, nil", got, err)
	}
	if err := saveCursor(path, 42); err != nil {
		t.Fatal(err)
	}
	if got, err = loadCursor(path); err != nil || got != 42 {
		t.Fatalf("loadCursor = %d, %v; want 42, nil", got, err)
	}
	// Overwrite is atomic (tmp+rename): no tmp file left behind.
	if err := saveCursor(path, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
	if got, _ = loadCursor(path); got != 99 {
		t.Fatalf("loadCursor after overwrite = %d, want 99", got)
	}
	// Corrupt cursor files fail loudly rather than silently restarting at 0
	// (which would be safe) or at garbage (which would not).
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCursor(path); err == nil {
		t.Fatal("loadCursor(corrupt) succeeded, want error")
	}
}

// openTestWAL opens a SyncAlways WAL in dir for an edge store.
func openTestWAL(t *testing.T, dir string) *results.WAL {
	t.Helper()
	wal, err := results.OpenWAL(results.WALConfig{Dir: dir, Policy: results.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	return wal
}

// gatedUpstream wraps an upstream collection server in a gate that answers
// 503 while down is set, simulating an upstream outage the forwarder must
// ride out.
func gatedUpstream(t *testing.T) (*results.Store, *atomic.Bool, *httptest.Server) {
	t.Helper()
	upStore, _, upSrv := upstream(t)
	var down atomic.Bool
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "upstream down", http.StatusServiceUnavailable)
			return
		}
		upSrv.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(gate.Close)
	return upStore, &down, gate
}

// TestForwarderResumesFromCursorAfterCrash is the package-level half of the
// kill-and-restart story: an edge ingests under a WAL, the upstream goes
// down, the tiny buffer spills to the WAL tail, the edge "crashes" (Stop: no
// drain, no cursor advance), and a fresh forwarder over the recovered store
// resumes from the persisted cursor — the upstream ends bit-for-bit complete,
// with zero drops on either run.
func TestForwarderResumesFromCursorAfterCrash(t *testing.T) {
	dir := t.TempDir()
	upStore, down, gate := gatedUpstream(t)

	wal := openTestWAL(t, dir)
	edge := results.NewStore()
	edge.AddObserver(wal) // WAL first: commits are durable before the forwarder sees them
	f, err := NewForwarder(ForwarderConfig{
		Client: apiclient.NewWithConfig(gate.URL, apiclient.Config{
			Retries: 1, RetryBackoff: time.Millisecond,
		}),
		MaxBatch:      8,
		FlushInterval: 2 * time.Millisecond,
		MaxBuffer:     8, // force a spill during the outage
		WAL:           wal,
	})
	if err != nil {
		t.Fatal(err)
	}
	edge.AddObserver(f)

	// Phase 1: upstream healthy; some records ship and advance the cursor.
	const phase1, phase2 = 10, 40
	for i := 0; i < phase1; i++ {
		if err := edge.Add(edgeMeasurement(i, core.StateSuccess)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c := f.Stats().AckedCursor; c == 0 {
		t.Fatal("cursor did not advance after a healthy flush")
	}

	// Phase 2: upstream down; the 8-slot buffer must spill to the WAL tail
	// rather than drop.
	down.Store(true)
	for i := phase1; i < phase1+phase2; i++ {
		if err := edge.Add(edgeMeasurement(i, core.StateSuccess)); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Spilled == 0 {
		t.Fatalf("expected a spill with MaxBuffer=8 and %d records buffered during the outage; stats %+v", phase2, st)
	}
	if st.Dropped != 0 {
		t.Fatalf("WAL-backed forwarder dropped %d records", st.Dropped)
	}

	// Crash: no drain, no further cursor writes. Close the WAL like a dead
	// process's file descriptors.
	f.Stop()
	cursorAtCrash := f.Stats().AckedCursor
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	if upStore.Len() >= phase1+phase2 {
		t.Fatalf("upstream already has everything (%d); outage did not bite", upStore.Len())
	}

	// Restart: recover the store from the WAL, reopen the log, bring the
	// upstream back, and let a fresh forwarder resume from the cursor file.
	recovered, _, err := results.OpenStoreFromWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Len() != phase1+phase2 {
		t.Fatalf("recovered store has %d records, want %d", recovered.Len(), phase1+phase2)
	}
	wal2 := openTestWAL(t, dir)
	defer wal2.Close()
	recovered.AddObserver(wal2)
	down.Store(false)
	f2, err := NewForwarder(ForwarderConfig{
		Client: apiclient.NewWithConfig(gate.URL, apiclient.Config{
			Retries: 1, RetryBackoff: time.Millisecond,
		}),
		MaxBatch:      8,
		FlushInterval: 2 * time.Millisecond,
		WAL:           wal2,
	})
	if err != nil {
		t.Fatal(err)
	}
	recovered.AddObserver(f2)
	if got := f2.Stats().AckedCursor; got != cursorAtCrash {
		t.Fatalf("restarted forwarder loaded cursor %d, want %d", got, cursorAtCrash)
	}
	if err := f2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	// New traffic after the restart must keep flowing too: recovery restored
	// the commit counter, so fresh commits get unseen stream positions.
	for i := phase1 + phase2; i < phase1+phase2+5; i++ {
		if err := recovered.Add(edgeMeasurement(i, core.StateSuccess)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}

	if upStore.Len() != phase1+phase2+5 {
		t.Fatalf("upstream has %d records after resume, want %d", upStore.Len(), phase1+phase2+5)
	}
	if st := f2.Stats(); st.Dropped != 0 {
		t.Fatalf("resumed forwarder dropped %d records", st.Dropped)
	}
}

// TestForwarderDeadLettersRejections checks the 4xx path is no longer
// swallowed silently: per-record rejections are counted by code, parked in
// the dead-letter ring, logged once per batch, and acknowledged — never
// re-queued into a poison loop.
func TestForwarderDeadLettersRejections(t *testing.T) {
	// An upstream that rejects index 0 of every batch and accepts the rest.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.BatchSubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := api.BatchSubmitResponse{Accepted: len(req.Measurements) - 1}
		resp.Rejected = append(resp.Rejected, api.RejectedSubmission{
			Index:         0,
			MeasurementID: req.Measurements[0].MeasurementID,
			Code:          api.CodeInvalidSubmission,
			Message:       "synthetic rejection",
		})
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
	defer srv.Close()

	var logMu sync.Mutex
	var logged int
	f, err := NewForwarder(ForwarderConfig{
		Upstream:      srv.URL,
		MaxBatch:      16,
		FlushInterval: time.Hour, // flush explicitly
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logged++
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f.Commit(nil, edgeMeasurement(i, core.StateSuccess))
	}
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st := f.Stats()
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	if st.RejectedByCode[api.CodeInvalidSubmission] != 1 {
		t.Fatalf("RejectedByCode = %v, want 1 %s", st.RejectedByCode, api.CodeInvalidSubmission)
	}
	if st.Forwarded != 2 {
		t.Fatalf("Forwarded = %d, want 2", st.Forwarded)
	}
	if st.Pending != 0 {
		t.Fatalf("Pending = %d; rejected record was re-queued", st.Pending)
	}
	dls := f.DeadLetters()
	if len(dls) != 1 {
		t.Fatalf("DeadLetters() = %d entries, want 1", len(dls))
	}
	if dls[0].Measurement.MeasurementID != "edge-0" || dls[0].Code != api.CodeInvalidSubmission {
		t.Fatalf("dead letter = %+v, want edge-0/%s", dls[0], api.CodeInvalidSubmission)
	}
	logMu.Lock()
	defer logMu.Unlock()
	if logged != 1 {
		t.Fatalf("rejection logged %d times, want once per batch", logged)
	}
}

// TestForwarderHonorsLoadSignal checks the acceptance criterion that
// backpressure is observable: a loaded upstream's suggested flush interval
// widens the forwarder's window, with nothing evicted or dead-lettered.
func TestForwarderHonorsLoadSignal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.BatchSubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := api.BatchSubmitResponse{
			Accepted: len(req.Measurements),
			Load: &api.LoadSignal{
				QueueDepth:           900,
				QueueCapacity:        1000,
				SuggestedFlushMillis: 1500,
			},
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}))
	defer srv.Close()

	f, err := NewForwarder(ForwarderConfig{
		Upstream:         srv.URL,
		FlushInterval:    5 * time.Millisecond,
		MaxFlushInterval: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	f.Commit(nil, edgeMeasurement(0, core.StateSuccess))
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if want := 1500 * time.Millisecond; st.FlushInterval != want {
		t.Fatalf("FlushInterval = %v after load advice, want %v", st.FlushInterval, want)
	}
	if st.Dropped != 0 || st.Rejected != 0 {
		t.Fatalf("load advice caused loss: %+v", st)
	}
	// A later unloaded response snaps the window back to the floor.
	// (Served by pointing the same forwarder at a response without advice.)
}

// TestForwarderWidensWindowOnFailure checks a failing upstream widens the
// flush window (bounded by MaxFlushInterval) instead of retrying in
// lockstep.
func TestForwarderWidensWindowOnFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	floor := time.Millisecond
	f, err := NewForwarder(ForwarderConfig{
		Client: apiclient.NewWithConfig(srv.URL, apiclient.Config{
			Retries: 1, RetryBackoff: time.Microsecond,
		}),
		FlushInterval:    floor,
		MaxFlushInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	f.Commit(nil, edgeMeasurement(0, core.StateSuccess))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := f.Stats(); st.FlushInterval > floor && st.LastError != nil {
			if st.FlushInterval > 100*time.Millisecond {
				t.Fatalf("FlushInterval %v exceeded MaxFlushInterval", st.FlushInterval)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("flush window never widened; stats %+v", f.Stats())
}

// TestFederationSoak hammers a WAL-backed forwarder with concurrent commits
// while the upstream flaps, then verifies completeness. It exists to run
// under -race in CI (scripts/ci.sh) as much as to check the counts.
func TestFederationSoak(t *testing.T) {
	dir := t.TempDir()
	upStore, down, gate := gatedUpstream(t)
	wal := openTestWAL(t, dir)
	defer wal.Close()
	edge := results.NewStore()
	edge.AddObserver(wal)
	f, err := NewForwarder(ForwarderConfig{
		Client: apiclient.NewWithConfig(gate.URL, apiclient.Config{
			Retries: 1, RetryBackoff: time.Millisecond,
		}),
		MaxBatch:      16,
		FlushInterval: time.Millisecond,
		MaxBuffer:     32,
		WAL:           wal,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	edge.AddObserver(f)

	const workers, perWorker = 4, 200
	var wg sync.WaitGroup
	stopFlap := make(chan struct{})
	wg.Add(1)
	go func() { // upstream flapper
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopFlap:
				down.Store(false)
				return
			case <-time.After(3 * time.Millisecond):
				down.Store(i%2 == 0)
			}
		}
	}()
	var cwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cwg.Add(1)
		go func(w int) {
			defer cwg.Done()
			for i := 0; i < perWorker; i++ {
				if err := edge.Add(edgeMeasurement(w*perWorker+i, core.StateSuccess)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	cwg.Wait()
	close(stopFlap)
	wg.Wait()
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	const total = workers * perWorker
	if upStore.Len() != total {
		t.Fatalf("upstream has %d records after soak, want %d", upStore.Len(), total)
	}
	if st := f.Stats(); st.Dropped != 0 {
		t.Fatalf("soak dropped %d records; stats %+v", st.Dropped, st)
	}
}
