package federation

// Chaos coverage for the forwarder's loss-accounting machinery: the ack
// tracker under adversarial acknowledgement orders (the gap pathology), the
// dead-letter ring under per-index rejection floods, and batch-level 4xx
// storms injected at the transport — which must re-queue, never
// dead-letter, never drop.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"encore/internal/api"
	apiclient "encore/internal/api/client"
	"encore/internal/core"
	"encore/internal/faultinject"
	"encore/internal/results"
)

// permute returns a seeded Fisher-Yates shuffle of 1..n.
func permute(n int, seed uint64) []uint64 {
	rng := faultinject.NewRNG(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	for i := n - 1; i > 0; i-- {
		j := int(rng.Uint64() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestAckTrackerAdversarialPermutations feeds the tracker every prefix of
// several shuffled ack orders and checks the cursor is always exactly the
// longest contiguous acknowledged prefix — never ahead (that would claim
// durability for unsent records), never behind once the gap closes.
func TestAckTrackerAdversarialPermutations(t *testing.T) {
	const n = 64
	for seed := uint64(1); seed <= 5; seed++ {
		order := permute(n, seed)
		tr := newAckTracker(0)
		acked := make(map[uint64]bool)
		for _, cseq := range order {
			tr.ack(cseq)
			acked[cseq] = true
			want := uint64(0)
			for acked[want+1] {
				want++
			}
			if got := tr.cursor(); got != want {
				t.Fatalf("seed %d: after ack(%d) cursor = %d, want contiguous prefix %d", seed, cseq, got, want)
			}
			if !tr.acked(cseq) {
				t.Fatalf("seed %d: position %d not reported acked", seed, cseq)
			}
		}
		if tr.cursor() != n {
			t.Fatalf("seed %d: full permutation ended at cursor %d, want %d", seed, tr.cursor(), n)
		}
		if len(tr.above) != 0 {
			t.Fatalf("seed %d: %d stale positions held above a complete prefix", seed, len(tr.above))
		}
	}
}

// TestAckTrackerDuplicateAcks checks re-acknowledging a position (upstream
// merged a re-sent batch idempotently) neither advances the cursor twice
// nor disturbs the gap set.
func TestAckTrackerDuplicateAcks(t *testing.T) {
	tr := newAckTracker(0)
	if !tr.ack(1) {
		t.Fatal("first ack(1) did not advance")
	}
	if tr.ack(1) {
		t.Fatal("duplicate ack(1) advanced the cursor again")
	}
	tr.ack(3)
	if tr.ack(3) {
		t.Fatal("duplicate ack of a gapped position reported an advance")
	}
	if tr.cursor() != 1 {
		t.Fatalf("cursor = %d, want 1 (position 2 still missing)", tr.cursor())
	}
	if !tr.ack(2) {
		t.Fatal("filling the gap did not advance")
	}
	if tr.cursor() != 3 {
		t.Fatalf("cursor = %d, want 3 after the gap closed", tr.cursor())
	}
}

// TestAckTrackerNeverSentPosition checks an ack for a position far beyond
// anything sent (a corrupt or forged acknowledgement) is parked in the gap
// set without advancing the cursor — and does not wedge later legitimate
// progress.
func TestAckTrackerNeverSentPosition(t *testing.T) {
	tr := newAckTracker(5)
	if tr.ack(1000) {
		t.Fatal("ack for a never-sent position advanced the cursor")
	}
	if tr.cursor() != 5 {
		t.Fatalf("cursor = %d, want unchanged 5", tr.cursor())
	}
	for cseq := uint64(6); cseq <= 20; cseq++ {
		tr.ack(cseq)
	}
	if tr.cursor() != 20 {
		t.Fatalf("cursor = %d, want 20: the phantom position must not block real progress", tr.cursor())
	}
	if !tr.acked(1000) {
		t.Fatal("phantom position lost from the gap set (a real ack for it would re-advance wrongly)")
	}
	if tr.acked(21) {
		t.Fatal("unacked position 21 reported acked")
	}
}

// rejectingUpstream accepts every batch at the HTTP level but rejects every
// record per-index with a typed code — the app-level flood that exercises
// the dead-letter ring. The forwarder's client is configured with gzip
// disabled, so bodies decode directly.
func rejectingUpstream(t *testing.T, code string) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	var seen atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.BatchSubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding forwarded batch: %v", err)
		}
		resp := api.BatchSubmitResponse{}
		for i, m := range req.Measurements {
			seen.Add(1)
			resp.Rejected = append(resp.Rejected, api.RejectedSubmission{
				Index: i, MeasurementID: m.MeasurementID, Code: code, Message: "rejected by test upstream",
			})
		}
		api.WriteJSON(w, http.StatusOK, resp)
	}))
	t.Cleanup(srv.Close)
	return srv, &seen
}

// TestDeadLetterRingOverflowAccounting floods the forwarder with per-index
// rejections far past DeadLetterLimit: the ring must stay bounded, keep the
// most recent casualties, and the Rejected/RejectedByCode counters must
// account for every record — including the ones the ring evicted.
func TestDeadLetterRingOverflowAccounting(t *testing.T) {
	const total, limit = 30, 8
	upSrv, seen := rejectingUpstream(t, string(api.CodeInvalidSubmission))

	f, err := NewForwarder(ForwarderConfig{
		Client: apiclient.NewWithConfig(upSrv.URL, apiclient.Config{
			Retries: 1, RetryBackoff: time.Millisecond, GzipThreshold: -1,
		}),
		MaxBatch:        7, // does not divide total: rings wrap mid-batch
		FlushInterval:   time.Hour,
		DeadLetterLimit: limit,
	})
	if err != nil {
		t.Fatal(err)
	}
	edge := results.NewStore()
	edge.AddObserver(f)
	for i := 0; i < total; i++ {
		if err := edge.Add(edgeMeasurement(i, core.StateSuccess)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if got := seen.Load(); got != total {
		t.Fatalf("upstream saw %d records, want %d", got, total)
	}
	st := f.Stats()
	if st.Rejected != total {
		t.Fatalf("Rejected = %d, want %d (evicted dead letters must stay counted)", st.Rejected, total)
	}
	if st.RejectedByCode[string(api.CodeInvalidSubmission)] != total {
		t.Fatalf("RejectedByCode = %v, want %d under %q", st.RejectedByCode, total, api.CodeInvalidSubmission)
	}
	if st.Dropped != 0 || st.Forwarded != 0 {
		t.Fatalf("stats %+v: a fully rejected stream must drop nothing and forward nothing", st)
	}
	ring := f.DeadLetters()
	if len(ring) != limit {
		t.Fatalf("dead-letter ring holds %d, want bounded at %d", len(ring), limit)
	}
	for i, dl := range ring {
		wantID := fmt.Sprintf("edge-%d", total-limit+i)
		if dl.Measurement.MeasurementID != wantID {
			t.Fatalf("ring[%d] = %q, want most-recent window entry %q", i, dl.Measurement.MeasurementID, wantID)
		}
		if dl.Code != string(api.CodeInvalidSubmission) {
			t.Fatalf("ring[%d] code = %q", i, dl.Code)
		}
	}
}

// TestForwarderRidesOut4xxBatchStorm injects transport-level 4xx storms in
// front of a real upstream: batch-level failures must re-queue the whole
// batch (never dead-letter it), and once the storm passes everything
// delivers — zero drops, zero rejections.
func TestForwarderRidesOut4xxBatchStorm(t *testing.T) {
	upStore, _, upSrv := upstream(t)

	rt := faultinject.NewRoundTripper(nil, faultinject.NetFaults{Seed: 7})
	f, err := NewForwarder(ForwarderConfig{
		Client: apiclient.NewWithConfig(upSrv.URL, apiclient.Config{
			HTTPClient:   &http.Client{Transport: rt, Timeout: 30 * time.Second},
			Retries:      2,
			RetryBackoff: time.Millisecond,
		}),
		MaxBatch:      8,
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	edge := results.NewStore()
	edge.AddObserver(f)

	const n = 40
	for i := 0; i < n; i++ {
		if err := edge.Add(edgeMeasurement(i, core.StateSuccess)); err != nil {
			t.Fatal(err)
		}
		if i == n/2 {
			// Storm arrives mid-stream: every send is answered 400 until
			// the counter drains (the consecutive-fault cap punctures it).
			rt.FailNext(6, http.StatusBadRequest, "")
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := f.Flush(context.Background())
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flush never converged after the 4xx storm: %v", err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st := f.Stats()
	if got := rt.Stats().StormResponses; got != 6 {
		t.Fatalf("storm responses = %d, want 6", got)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d records across a transient 4xx storm", st.Dropped)
	}
	if st.Rejected != 0 || f.DeadLetterCount() != 0 {
		t.Fatalf("batch-level 4xx must re-queue, not dead-letter: rejected %d, ring %d", st.Rejected, f.DeadLetterCount())
	}
	if upStore.Len() != n {
		t.Fatalf("upstream has %d records after the storm, want %d", upStore.Len(), n)
	}
	if st.Forwarded != n {
		t.Fatalf("Forwarded = %d, want %d", st.Forwarded, n)
	}
}
