// Package api defines Encore's versioned wire contract: the typed
// request/response DTOs, error codes, and canonical endpoint paths both
// servers mount and every consumer (the client SDK, the federation
// forwarder, the simulators) speaks.
//
// Two API versions coexist on the same listener. The v1 surface is the
// paper's beacon-era scheme, preserved bit-for-bit: GET /task.js answers
// generated JavaScript, GET /submit answers a 1x1 transparent GIF, and
// errors are terse plain text (Burnett & Feamster, SIGCOMM 2015, §5.3-§5.5
// and Appendix A). The v2 surface is JSON over explicit methods: batched
// POST /v2/submissions for high-volume and federation traffic, structured
// GET /v2/tasks (the v1 JavaScript is one rendering of the same
// assignment), JSON health, and a JSONL measurement export. v1 error
// responses share v2's typed error codes, mapped onto plain-text bodies, so
// no internal error string leaks to the wire on either version.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"encore/internal/results"
)

// Canonical endpoint paths. The bare v1 paths (/task.js, /submit, ...) are
// the paper-era spellings every deployed beacon client uses; the servers
// also mount them under the explicit /v1/ prefix via router aliases.
const (
	V1SubmitPath   = "/submit"
	V1TaskJSPath   = "/task.js"
	V1FramePath    = "/frame.html"
	V1HealthPath   = "/healthz"
	V1CoveragePath = "/coverage.json"

	V2SubmissionsPath  = "/v2/submissions"
	V2TasksPath        = "/v2/tasks"
	V2HealthPath       = "/v2/healthz"
	V2MeasurementsPath = "/v2/measurements"
	// V2GossipPath is the coordinator federation's anti-entropy exchange
	// (binary wire.Gossip frames both ways); see internal/coordfed.
	V2GossipPath = "/v2/gossip"
)

// Error codes carried by v2 JSON error bodies and, as terse plain text, by
// v1 error responses. Each code maps to exactly one HTTP status.
const (
	CodeInvalidSubmission     = "invalid_submission"      // 400
	CodeBadRequest            = "bad_request"             // 400 (malformed JSON, bad encoding)
	CodeUnknownMeasurement    = "unknown_measurement"     // 404
	CodeNotFound              = "not_found"               // 404
	CodeMethodNotAllowed      = "method_not_allowed"      // 405
	CodeConflictingResult     = "conflicting_result"      // 409
	CodeRateLimited           = "rate_limited"            // 429
	CodeAttributionNotAllowed = "attribution_not_allowed" // 403
	CodeUnauthorizedPeer      = "unauthorized_peer"       // 403 (gossip without the shared federation token)
	CodeScheduleMismatch      = "schedule_mismatch"       // 409 (gossip from a peer with a different task set / quorum window)
	CodeOverloaded            = "overloaded"              // 503 (ingest queue saturated; retry later)
	CodeDegraded              = "degraded"                // 503 (durability lost; durable lane closed)
	CodeInternal              = "internal"                // 500
)

// Health status values carried by HealthResponse.Status. A degraded server
// is up and serving reads and its non-durable lanes, but has lost a
// durability guarantee (a sticky WAL error, a forwarder dropping records)
// that operators must act on.
const (
	StatusOK       = "ok"
	StatusDegraded = "degraded"
)

// StatusForCode maps an error code to its HTTP status.
func StatusForCode(code string) int {
	switch code {
	case CodeUnknownMeasurement, CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeConflictingResult, CodeScheduleMismatch:
		return http.StatusConflict
	case CodeRateLimited:
		return http.StatusTooManyRequests
	case CodeAttributionNotAllowed, CodeUnauthorizedPeer:
		return http.StatusForbidden
	case CodeOverloaded, CodeDegraded:
		return http.StatusServiceUnavailable
	case CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// Error is the typed error both API versions report: v2 responses carry it
// as a JSON body, v1 responses carry just the code as plain text. It
// implements error so the client SDK can return it directly.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message,omitempty"`
	// RetryAfter is the server's Retry-After hint, filled in by the client
	// SDK when decoding a 503 (or any response carrying the header). It
	// rides outside the JSON body — the header is the wire representation.
	RetryAfter time.Duration `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Message == "" {
		return "api: " + e.Code
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// Status returns the HTTP status the error maps to.
func (e *Error) Status() int { return StatusForCode(e.Code) }

// Errorf builds an Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WriteError writes e as a v2 JSON error response.
func WriteError(w http.ResponseWriter, e *Error) {
	WriteJSON(w, e.Status(), e)
}

// WriteErrorV1 writes e as a v1 plain-text error response: the status code
// plus the error code as the body. Deliberately terse — v1 clients are image
// beacons that never read bodies, and the code alone leaks nothing internal.
func WriteErrorV1(w http.ResponseWriter, e *Error) {
	http.Error(w, e.Code, e.Status())
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// SubmitRequest is one v2 measurement submission: the client-side fields of
// the paper's beacon query string, as JSON. The submitting client's identity
// (address, browser) always comes from the transport — the request's remote
// address / X-Forwarded-For and User-Agent header — never from the body, so
// a batch carries one client's submissions exactly like a sequence of
// beacons would.
type SubmitRequest struct {
	MeasurementID string  `json:"measurement_id"`
	Result        string  `json:"result"`
	ElapsedMillis float64 `json:"elapsed_millis,omitempty"`
	// OriginSite optionally names the Encore-hosting site, standing in for
	// the Referer header (which three quarters of clients strip, §7).
	OriginSite string `json:"origin_site,omitempty"`
	// ReceivedUnixMillis optionally carries the client-side observation
	// time (Unix milliseconds) — what lets a batch uploaded late (an
	// offline-collected run, a simulator replaying a campaign) keep its
	// original timeline, which the v1 beacon format cannot express. The
	// server clamps values in the future to its own arrival time, so a
	// client cannot place measurements ahead of now; zero means "stamp on
	// arrival", the v1 behaviour.
	ReceivedUnixMillis int64 `json:"received_unix_millis,omitempty"`
}

// BatchSubmitRequest is the body of POST /v2/submissions. Exactly one of the
// two lanes is normally used:
//
//   - Submissions carries raw client submissions; the server attributes each
//     against its task index, applies the abuse guard, and geolocates the
//     submitting address, exactly as the v1 beacon path does.
//   - Measurements carries fully attributed records — a federation edge
//     collector forwarding its committed measurements upstream. The server
//     rejects this lane with attribution_not_allowed unless it was
//     explicitly configured as an aggregation-tier upstream.
type BatchSubmitRequest struct {
	Submissions  []SubmitRequest       `json:"submissions,omitempty"`
	Measurements []results.Measurement `json:"measurements,omitempty"`
}

// RejectedSubmission reports one batch member the server refused, by its
// index within its lane.
type RejectedSubmission struct {
	Index         int    `json:"index"`
	MeasurementID string `json:"measurement_id,omitempty"`
	Code          string `json:"code"`
	Message       string `json:"message,omitempty"`
}

// LoadSignal is the upstream's explicit backpressure advice, carried on
// every POST /v2/submissions response. Instead of silently shedding when its
// async ingest queue saturates, the server tells submitters how loaded it is
// and how often it would like to hear from them; the federation forwarder
// honors SuggestedFlushMillis by widening its batch/flush window, so a slow
// upstream slows its edges down before anything has to be dropped or 503'd.
type LoadSignal struct {
	// QueueDepth and QueueCapacity describe the ingest queue at response
	// time; a synchronous (unqueued) server reports zeros.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity,omitempty"`
	// SuggestedFlushMillis is the flush interval the server asks batching
	// submitters to use; zero means "no advice, keep your own schedule".
	SuggestedFlushMillis int `json:"suggested_flush_millis,omitempty"`
}

// BatchSubmitResponse reports what POST /v2/submissions did with the batch.
// Partial rejection is not an HTTP error: the response is 200 whenever the
// batch itself was well-formed, and Rejected itemizes refused members.
type BatchSubmitResponse struct {
	Accepted int                  `json:"accepted"`
	Rejected []RejectedSubmission `json:"rejected,omitempty"`
	// Load is the server's backpressure advice; see LoadSignal.
	Load *LoadSignal `json:"load,omitempty"`
}

// TaskRequest carries the client hints GET /v2/tasks accepts as query
// parameters. The zero value requests the server defaults.
type TaskRequest struct {
	// DwellSeconds is how long the client expects to stay on the origin
	// page (the scheduler skips tasks that cannot finish in time).
	DwellSeconds float64
	// IncludeScript asks for the rendered v1 JavaScript alongside each
	// structured task, demonstrating that /task.js is one rendering of this
	// response.
	IncludeScript bool
}

// Query parameter names for TaskRequest.
const (
	ParamDwellSeconds  = "dwell-seconds"
	ParamIncludeScript = "script"
)

// ParseTaskRequest extracts a TaskRequest from query parameters.
func ParseTaskRequest(r *http.Request) TaskRequest {
	q := r.URL.Query()
	var req TaskRequest
	if v := q.Get(ParamDwellSeconds); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			req.DwellSeconds = f
		}
	}
	if v := q.Get(ParamIncludeScript); v == "1" || v == "true" {
		req.IncludeScript = true
	}
	return req
}

// Task is the structured form of one assigned measurement task — the same
// assignment /task.js renders as JavaScript.
type Task struct {
	MeasurementID  string `json:"measurement_id"`
	Type           string `json:"type"`
	TargetURL      string `json:"target_url"`
	CachedImageURL string `json:"cached_image_url,omitempty"`
	PatternKey     string `json:"pattern_key"`
	TimeoutMillis  int    `json:"timeout_millis,omitempty"`
	Control        bool   `json:"control,omitempty"`
	// Script is the rendered v1 JavaScript for this task, present only when
	// the request asked for it.
	Script string `json:"script,omitempty"`
}

// TaskResponse is the body of GET /v2/tasks.
type TaskResponse struct {
	Tasks []Task `json:"tasks"`
	// CollectorURL is the base URL submissions for these tasks go to.
	CollectorURL string `json:"collector_url,omitempty"`
}

// HealthResponse is the body of GET /v2/healthz on either server.
type HealthResponse struct {
	// Status is StatusOK or StatusDegraded. A collector degrades when its
	// WAL records a sticky error (acknowledged writes are no longer being
	// persisted; the durable v2 submission lane is closed with
	// CodeDegraded while the best-effort v1 lane and all reads keep
	// serving) or when its forwarder has dropped records.
	Status string `json:"status"`
	// WALError is the collector WAL's sticky error, when degraded for that
	// reason.
	WALError string `json:"wal_error,omitempty"`
	// Measurements is the collection store's record count (collector only).
	Measurements int `json:"measurements,omitempty"`
	// TasksServed / TasksAssigned are coordination-side counters.
	TasksServed   uint64 `json:"tasks_served,omitempty"`
	TasksAssigned uint64 `json:"tasks_assigned,omitempty"`
	// Forwarder counters (collector only, when federation is wired).
	// Spilled counts buffer overflows absorbed by tailing the WAL (the
	// design working as intended, surfaced for observability); DeadLetters
	// is the current dead-letter ring size (upstream-rejected records);
	// Dropped counts records lost outright (> 0 only without a WAL, and
	// itself grounds for degraded status).
	ForwarderSpilled     uint64 `json:"forwarder_spilled,omitempty"`
	ForwarderDeadLetters int    `json:"forwarder_dead_letters,omitempty"`
	ForwarderDropped     uint64 `json:"forwarder_dropped,omitempty"`
	// Origin is this coordinator's federation identity (federated
	// coordinators only). A federated coordinator reports StatusDegraded
	// while a quorum of the coordinator set is unreachable; it keeps
	// assigning tasks from its last merged coverage view throughout.
	Origin string `json:"origin,omitempty"`
	// Peers reports per-peer gossip health (federated coordinators only).
	Peers []PeerHealth `json:"peers,omitempty"`
}

// PeerHealth is one federation peer's gossip state as reported on
// /v2/healthz.
type PeerHealth struct {
	// URL is the peer's base URL as configured.
	URL string `json:"url"`
	// State is "alive", "suspect" (missed rounds, still probed), or "dead"
	// (probing continues at full backoff; a revived peer is re-adopted on
	// its first successful exchange).
	State string `json:"state"`
	// ConsecutiveFailures counts gossip rounds failed since the last
	// successful exchange.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LagMillis is how long ago the last successful exchange with this peer
	// completed (-1 before the first success).
	LagMillis int64 `json:"lag_millis"`
}

// BearerToken extracts the shared-secret token from an Authorization header
// of the form "Bearer <token>"; it returns "" when the header is absent or
// not a bearer credential. The attributed federation lane authenticates with
// it — see docs/API.md.
func BearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return strings.TrimSpace(h[len(prefix):])
	}
	return ""
}

// BeaconURL builds the v1 image-beacon submission URL for a collector base
// URL, exactly as the generated task JavaScript constructs it (Appendix A).
func BeaconURL(collectorBase, measurementID, result string, elapsedMillis float64) string {
	base := strings.TrimSuffix(collectorBase, "/")
	return fmt.Sprintf("%s%s?cmh-id=%s&cmh-result=%s&cmh-elapsed=%.0f",
		base, V1SubmitPath, measurementID, result, elapsedMillis)
}

// TaskJSURL builds the v1 task-script URL for a coordinator base URL.
func TaskJSURL(coordinatorBase string) string {
	return strings.TrimSuffix(coordinatorBase, "/") + V1TaskJSPath
}
