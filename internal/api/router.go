package api

import (
	"net/http"
	"sort"
	"strings"
)

// Router is a minimal exact-match HTTP router for the API tier. It replaces
// the servers' original strings.HasSuffix dispatch, which matched any path
// ending in a known suffix ("/anything/healthz") and served every method.
// The router matches method + exact path, answers 404 for unknown paths and
// 405 (with an Allow header) for known paths with the wrong method, and —
// when CORS is enabled — emits Access-Control-Allow-* headers on every
// response and answers OPTIONS preflight requests itself, so cross-origin
// AJAX submissions (§5.5) pass browser preflight checks.
//
// Routes are registered before the router serves traffic; ServeHTTP never
// mutates router state, so a configured router is safe for concurrent use.
type Router struct {
	routes map[string]map[string]http.Handler // path -> method -> handler
	// notFound answers requests for unregistered paths; defaults to
	// http.NotFound, whose body v1 clients already observe.
	notFound http.Handler
	// cors enables Access-Control-Allow-* headers and OPTIONS preflight
	// handling on every registered path.
	cors bool
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{
		routes:   make(map[string]map[string]http.Handler),
		notFound: http.HandlerFunc(http.NotFound),
	}
}

// EnableCORS turns on cross-origin headers and OPTIONS preflight handling.
func (rt *Router) EnableCORS() { rt.cors = true }

// Handle registers a handler for an exact method and path.
func (rt *Router) Handle(method, path string, h http.Handler) {
	byMethod, ok := rt.routes[path]
	if !ok {
		byMethod = make(map[string]http.Handler)
		rt.routes[path] = byMethod
	}
	byMethod[method] = h
}

// HandleFunc registers a handler function for an exact method and path.
func (rt *Router) HandleFunc(method, path string, h http.HandlerFunc) {
	rt.Handle(method, path, h)
}

// Alias makes requests for path serve exactly like the canonical path, for
// every method registered there. This is the compat shim that keeps the bare
// beacon-era spellings (/submit, /task.js) working alongside the explicit
// /v1/ prefix.
func (rt *Router) Alias(path, canonical string) {
	rt.routes[path] = rt.routes[canonical]
}

// NotFound overrides the handler for unregistered paths.
func (rt *Router) NotFound(h http.Handler) { rt.notFound = h }

// allowHeader lists the methods registered for a path, sorted, with OPTIONS
// appended when the router answers preflights itself.
func (rt *Router) allowHeader(byMethod map[string]http.Handler) string {
	methods := make([]string, 0, len(byMethod)+1)
	for m := range byMethod {
		methods = append(methods, m)
	}
	if rt.cors {
		methods = append(methods, http.MethodOptions)
	}
	sort.Strings(methods)
	return strings.Join(methods, ", ")
}

// isV2 reports whether a request path belongs to the JSON surface, whose
// error responses carry typed JSON bodies; everything else answers in the
// v1 plain-text style deployed beacon clients already observe.
func isV2(path string) bool { return strings.HasPrefix(path, "/v2/") }

// ServeHTTP dispatches by exact path, then method.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if rt.cors {
		w.Header().Set("Access-Control-Allow-Origin", "*")
	}
	byMethod, ok := rt.routes[r.URL.Path]
	if !ok || len(byMethod) == 0 {
		if isV2(r.URL.Path) {
			WriteError(w, &Error{Code: CodeNotFound})
			return
		}
		rt.notFound.ServeHTTP(w, r)
		return
	}
	if rt.cors && r.Method == http.MethodOptions {
		// Preflight: advertise the methods this path accepts and the headers
		// batch submissions send (JSON bodies, optionally gzip-compressed).
		h := w.Header()
		h.Set("Access-Control-Allow-Methods", rt.allowHeader(byMethod))
		h.Set("Access-Control-Allow-Headers", "Content-Type, Content-Encoding, Authorization")
		h.Set("Access-Control-Max-Age", "86400")
		w.WriteHeader(http.StatusNoContent)
		return
	}
	h, ok := byMethod[r.Method]
	if !ok {
		w.Header().Set("Allow", rt.allowHeader(byMethod))
		e := &Error{Code: CodeMethodNotAllowed}
		if isV2(r.URL.Path) {
			WriteError(w, e)
		} else {
			WriteErrorV1(w, e)
		}
		return
	}
	h.ServeHTTP(w, r)
}
