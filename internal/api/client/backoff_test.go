package client

// Tests for the retry-storm fixes in the SDK: the capped, jittered backoff
// (the old implementation left-shifted without bound — attempt 64 wrapped to
// a zero backoff and the client hammered a down server in a tight loop),
// Retry-After honoring, and the bearer-token header.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"encore/internal/api"
)

func TestBackoffCappedAndJittered(t *testing.T) {
	c := NewWithConfig("http://example.invalid", Config{
		RetryBackoff:    50 * time.Millisecond,
		RetryBackoffMax: time.Second,
	})
	// Early attempts stay inside the doubled-then-jittered window.
	for attempt := 1; attempt <= 4; attempt++ {
		base := 50 * time.Millisecond << (attempt - 1)
		for i := 0; i < 50; i++ {
			b := c.backoffFor(attempt, nil)
			if b < base/2 || b > base {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, b, base/2, base)
			}
		}
	}
	// Deep attempts — including shift counts that would overflow a left
	// shift — stay positive and capped.
	for _, attempt := range []int{10, 63, 64, 65, 1 << 20} {
		for i := 0; i < 50; i++ {
			b := c.backoffFor(attempt, nil)
			if b <= 0 || b > time.Second {
				t.Fatalf("attempt %d: backoff %v outside (0, 1s]", attempt, b)
			}
		}
	}
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	c := NewWithConfig("http://example.invalid", Config{
		RetryBackoff:    time.Millisecond,
		RetryBackoffMax: 10 * time.Millisecond,
	})
	err := &api.Error{Code: api.CodeOverloaded, RetryAfter: 3 * time.Second}
	if b := c.backoffFor(1, err); b != 3*time.Second {
		t.Fatalf("backoff = %v, want the server's Retry-After of 3s", b)
	}
	// A Retry-After smaller than the computed backoff does not shrink it.
	c2 := NewWithConfig("http://example.invalid", Config{
		RetryBackoff:    4 * time.Second,
		RetryBackoffMax: 8 * time.Second,
	})
	if b := c2.backoffFor(1, &api.Error{RetryAfter: time.Millisecond}); b < 2*time.Second {
		t.Fatalf("tiny Retry-After shrank backoff to %v", b)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"garbage", 0},
	} {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// HTTP-date form: a date in the future parses to roughly the gap.
	date := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(date); got < 20*time.Second || got > 31*time.Second {
		t.Errorf("parseRetryAfter(%q) = %v, want ~30s", date, got)
	}
}

func TestRetryAfterReachesTypedError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		api.WriteError(w, api.Errorf(api.CodeOverloaded, "queue full"))
	}))
	defer srv.Close()

	c := NewWithConfig(srv.URL, Config{Retries: 1})
	_, err := c.SubmitBatch(t.Context(), nil, nil)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *api.Error, got %v", err)
	}
	if apiErr.Code != api.CodeOverloaded || apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("got code %q RetryAfter %v, want %q 7s", apiErr.Code, apiErr.RetryAfter, api.CodeOverloaded)
	}
}

func TestAuthTokenHeader(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("Authorization")
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.BatchSubmitResponse{})
	}))
	defer srv.Close()

	c := NewWithConfig(srv.URL, Config{AuthToken: "edge-secret"})
	if _, err := c.SubmitBatch(t.Context(), nil, nil); err != nil {
		t.Fatal(err)
	}
	if got != "Bearer edge-secret" {
		t.Fatalf("Authorization = %q, want %q", got, "Bearer edge-secret")
	}
}
