package client

// The SDK's binary transport: with Config.BinaryEncoding set, the batch
// lanes ship application/x-encore-records frame streams — the WAL's own
// CRC-framed record encoding — instead of JSON bodies. Requests encode into
// pooled buffers (a steady-state submitter allocates nothing per batch) and
// are never gzip-compressed: the frames are already varint-compact, and the
// gzip round-trip costs more allocations than the bytes it would save.
// Responses stay JSON, so error handling, rejections, and the load signal
// are identical across encodings.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"encore/internal/api"
	"encore/internal/results"
	"encore/internal/wire"
)

// BinaryEncoding reports whether this client ships batches as binary record
// frames.
func (c *Client) BinaryEncoding() bool { return c.cfg.BinaryEncoding }

// postRecords POSTs a pre-framed record stream to the batch endpoint and
// decodes the 2xx JSON response into out.
func (c *Client) postRecords(ctx context.Context, frames []byte, out any, meta *ClientMeta) error {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+api.V2SubmissionsPath, bytes.NewReader(frames))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", wire.ContentTypeRecords)
		c.apply(req, meta)
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// submitRecordFrames POSTs already-framed bytes and returns the batch
// response; the Batcher's binary mode flushes through it.
func (c *Client) submitRecordFrames(ctx context.Context, frames []byte, meta *ClientMeta) (*api.BatchSubmitResponse, error) {
	var out api.BatchSubmitResponse
	if err := c.postRecords(ctx, frames, &out, meta); err != nil {
		return nil, err
	}
	return &out, nil
}

// ForwardRecordFrames submits an already-framed record stream on the
// federation lane, verbatim. This is the zero-re-encode forward path: an
// edge collector ships the exact bytes its WAL persisted, no decode, no
// re-serialization. The upstream must have been configured with
// AllowAttributed.
func (c *Client) ForwardRecordFrames(ctx context.Context, frames []byte) (*api.BatchSubmitResponse, error) {
	return c.submitRecordFrames(ctx, frames, nil)
}

// submitBatchBinary is SubmitBatch's binary-encoding path: each submission
// becomes one kind-3 frame in a pooled buffer.
func (c *Client) submitBatchBinary(ctx context.Context, subs []api.SubmitRequest, meta *ClientMeta) (*api.BatchSubmitResponse, error) {
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	for i := range subs {
		sub := wire.Submission(subs[i])
		*buf = wire.AppendSubmissionFrame(*buf, &sub)
	}
	return c.submitRecordFrames(ctx, *buf, meta)
}

// forwardMeasurementsBinary is ForwardMeasurements's binary-encoding path:
// each record becomes one kind-2 frame (stream positions zero — commit
// positions are the sending WAL's coordinate, and a caller holding decoded
// measurements no longer has them).
func (c *Client) forwardMeasurementsBinary(ctx context.Context, ms []results.Measurement) (*api.BatchSubmitResponse, error) {
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	for i := range ms {
		b, err := wire.AppendRecordFrame(*buf, 0, 0, (*wire.Record)(&ms[i]))
		if err != nil {
			return nil, err
		}
		*buf = b
	}
	return c.submitRecordFrames(ctx, *buf, nil)
}

// decodeRecordStream drives fn over every record frame in r, the client side
// of the binary measurement export.
func decodeRecordStream(r io.Reader, fn func(results.Measurement) error) error {
	fr := wire.GetFrameReader(r)
	defer wire.PutFrameReader(fr)
	for {
		payload, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		_, _, rec, err := wire.DecodeRecord(payload)
		if err != nil {
			return err
		}
		if err := fn(results.Measurement(rec)); err != nil {
			return err
		}
	}
}
