// Package client is the Go SDK for Encore's versioned API: a typed Client
// with retry, request batching, gzip compression, and connection reuse, so
// consumers (the client simulator, the load generator, the federation
// forwarder, encore-analyze's remote mode) stop hand-rolling URLs against
// the servers' concrete types.
//
// Transient failures — network errors and 5xx responses — are retried with
// exponential backoff up to Config.Retries attempts; 4xx responses
// (including 429, the abuse guard's rate-limit verdict, which retrying
// would only amplify) return the server's typed *api.Error immediately.
package client

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"encore/internal/api"
	"encore/internal/results"
	"encore/internal/wire"
)

// Config parameterizes a Client. The zero value of every field falls back
// to a sensible default.
type Config struct {
	// HTTPClient is the underlying transport; nil uses a dedicated client
	// with the default transport's connection pooling (keep-alives reuse
	// connections across requests, which is where batch submission gets
	// most of its win over per-beacon handshakes).
	HTTPClient *http.Client
	// Retries is the maximum number of attempts per request (default 3).
	Retries int
	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt (default 50ms) up to RetryBackoffMax, with jitter — see do.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the doubled backoff (default 5s). Without the
	// cap, the former unchecked `RetryBackoff << attempt` shift overflowed
	// into absurd (or, past 63 shifts, negative) waits at high retry counts.
	RetryBackoffMax time.Duration
	// AuthToken, when set, is sent as an "Authorization: Bearer" header with
	// every request. The attributed federation lane requires it when the
	// upstream was started with an attributed-lane token.
	AuthToken string
	// GzipThreshold is the body size in bytes above which POST bodies are
	// gzip-compressed (default 4096; negative disables compression).
	GzipThreshold int
	// UserAgent is sent with every request unless a per-call ClientMeta
	// overrides it.
	UserAgent string
	// BinaryEncoding switches the batch lanes — SubmitBatch,
	// ForwardMeasurements, the Batcher, and the Measurements export — from
	// JSON to the application/x-encore-records frame stream, the same
	// CRC-framed encoding the collector's WAL persists. Responses stay JSON;
	// servers that predate the binary lane answer it with a 400, they do not
	// misparse it. See binary.go.
	BinaryEncoding bool
}

// Client speaks Encore's v1 and v2 API against one server base URL. It is
// safe for concurrent use.
type Client struct {
	base string
	cfg  Config
}

// New creates a Client for the server at base with default configuration.
func New(base string) *Client { return NewWithConfig(base, Config{}) }

// NewWithConfig creates a Client with explicit configuration.
func NewWithConfig(base string, cfg Config) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 5 * time.Second
	}
	if cfg.GzipThreshold == 0 {
		cfg.GzipThreshold = 4096
	}
	return &Client{base: strings.TrimSuffix(base, "/"), cfg: cfg}
}

// BaseURL returns the server base URL the client targets.
func (c *Client) BaseURL() string { return c.base }

// ClientMeta optionally impersonates a measurement client on a per-call
// basis: the simulators drive many synthetic clients through one SDK
// instance, and the collection server attributes identity from transport
// headers (X-Forwarded-For, User-Agent, Referer) — exactly the headers a
// reverse proxy would forward for a real browser.
type ClientMeta struct {
	IP        string
	UserAgent string
	Referer   string
}

func (c *Client) apply(req *http.Request, meta *ClientMeta) {
	if c.cfg.UserAgent != "" {
		req.Header.Set("User-Agent", c.cfg.UserAgent)
	}
	if c.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.AuthToken)
	}
	if meta == nil {
		return
	}
	if meta.IP != "" {
		req.Header.Set("X-Forwarded-For", meta.IP)
	}
	if meta.UserAgent != "" {
		req.Header.Set("User-Agent", meta.UserAgent)
	}
	if meta.Referer != "" {
		req.Header.Set("Referer", meta.Referer)
	}
}

// retryable reports whether an attempt's outcome warrants another try.
// 429 is deliberately NOT retryable: it is the abuse guard's per-client
// rate-limit verdict (§8), and re-sending with a sub-second backoff would
// triple the load from exactly the clients the guard throttles — callers
// get the typed rate_limited error immediately, like the in-process path.
func retryable(status int, err error) bool {
	if err != nil {
		return true // network-level failure
	}
	return status >= 500
}

// backoffFor computes the pre-attempt delay: api.BackoffDelay's capped,
// full-jittered exponential, raised to the server's Retry-After when the
// previous failure carried one and asked for longer than we would have
// waited.
func (c *Client) backoffFor(attempt int, lastErr error) time.Duration {
	backoff := api.BackoffDelay(c.cfg.RetryBackoff, c.cfg.RetryBackoffMax, attempt, rand.Int64N)
	var apiErr *api.Error
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > backoff {
		backoff = apiErr.RetryAfter
	}
	return backoff
}

// do issues a request built by build, retrying transient failures. The
// builder runs once per attempt so request bodies replay cleanly.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(c.backoffFor(attempt, lastErr)):
			}
		}
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.cfg.HTTPClient.Do(req.WithContext(ctx))
		if err == nil && !retryable(resp.StatusCode, nil) {
			return resp, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = decodeError(resp)
			resp.Body.Close()
		}
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, fmt.Errorf("client: %d attempts failed: %w", c.cfg.Retries, lastErr)
}

// decodeError turns a non-2xx response into an error, preferring the typed
// v2 JSON body and falling back to the terse v1 text. A Retry-After header
// rides along on the typed error so retry scheduling can honor it.
func decodeError(resp *http.Response) error {
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var apiErr api.Error
	if json.Unmarshal(body, &apiErr) == nil && apiErr.Code != "" {
		apiErr.RetryAfter = retryAfter
		return &apiErr
	}
	if code := strings.TrimSpace(string(body)); code != "" {
		return &api.Error{Code: code, RetryAfter: retryAfter}
	}
	return fmt.Errorf("client: HTTP %d", resp.StatusCode)
}

// parseRetryAfter parses a Retry-After header value: delay-seconds or an
// HTTP date. Unparseable or absent values yield zero.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// checkStatus consumes a response expected to be 2xx, returning the typed
// error otherwise.
func checkStatus(resp *http.Response) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return decodeError(resp)
}

// postJSON POSTs v as JSON (gzip-compressed past the threshold) and decodes
// the 2xx response into out.
func (c *Client) postJSON(ctx context.Context, path string, v, out any, meta *ClientMeta) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	gzipped := c.cfg.GzipThreshold >= 0 && len(payload) > c.cfg.GzipThreshold
	if gzipped {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		if _, err := gz.Write(payload); err != nil {
			return err
		}
		if err := gz.Close(); err != nil {
			return err
		}
		payload = buf.Bytes()
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if gzipped {
			req.Header.Set("Content-Encoding", "gzip")
		}
		c.apply(req, meta)
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// getJSON GETs path and decodes the 2xx response into out.
func (c *Client) getJSON(ctx context.Context, path string, out any, meta *ClientMeta) error {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
		if err != nil {
			return nil, err
		}
		c.apply(req, meta)
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// SubmitBeacon submits one measurement result over the v1 image-beacon
// surface, exactly as the generated task JavaScript does.
func (c *Client) SubmitBeacon(ctx context.Context, measurementID, result string, elapsedMillis float64, meta *ClientMeta) error {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodGet, api.BeaconURL(c.base, measurementID, result, elapsedMillis), nil)
		if err != nil {
			return nil, err
		}
		c.apply(req, meta)
		return req, nil
	})
	if err != nil {
		return err
	}
	return checkStatus(resp)
}

// Submit submits one v2 measurement result (a batch of one).
func (c *Client) Submit(ctx context.Context, sub api.SubmitRequest, meta *ClientMeta) error {
	resp, err := c.SubmitBatch(ctx, []api.SubmitRequest{sub}, meta)
	if err != nil {
		return err
	}
	if len(resp.Rejected) > 0 {
		return &api.Error{Code: resp.Rejected[0].Code, Message: resp.Rejected[0].Message}
	}
	return nil
}

// SubmitBatch submits a batch of raw v2 submissions sharing this call's
// client identity. Partial rejections are reported in the response, not as
// an error.
func (c *Client) SubmitBatch(ctx context.Context, subs []api.SubmitRequest, meta *ClientMeta) (*api.BatchSubmitResponse, error) {
	if c.cfg.BinaryEncoding {
		return c.submitBatchBinary(ctx, subs, meta)
	}
	var out api.BatchSubmitResponse
	err := c.postJSON(ctx, api.V2SubmissionsPath, api.BatchSubmitRequest{Submissions: subs}, &out, meta)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// ForwardMeasurements submits fully attributed measurement records on the
// batch endpoint's federation lane. The upstream must have been configured
// with AllowAttributed.
func (c *Client) ForwardMeasurements(ctx context.Context, ms []results.Measurement) (*api.BatchSubmitResponse, error) {
	if c.cfg.BinaryEncoding {
		return c.forwardMeasurementsBinary(ctx, ms)
	}
	var out api.BatchSubmitResponse
	err := c.postJSON(ctx, api.V2SubmissionsPath, api.BatchSubmitRequest{Measurements: ms}, &out, nil)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Tasks requests structured measurement tasks from a coordination server.
func (c *Client) Tasks(ctx context.Context, req api.TaskRequest, meta *ClientMeta) (*api.TaskResponse, error) {
	path := api.V2TasksPath
	var params []string
	if req.DwellSeconds > 0 {
		params = append(params, fmt.Sprintf("%s=%g", api.ParamDwellSeconds, req.DwellSeconds))
	}
	if req.IncludeScript {
		params = append(params, api.ParamIncludeScript+"=1")
	}
	if len(params) > 0 {
		path += "?" + strings.Join(params, "&")
	}
	var out api.TaskResponse
	if err := c.getJSON(ctx, path, &out, meta); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches the server's v2 health document.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	if err := c.getJSON(ctx, api.V2HealthPath, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}

// Measurements streams a collection server's measurement export, invoking
// fn for each record in insertion order. fn returning an error stops the
// stream and returns that error. With BinaryEncoding set, the export is
// negotiated (and decoded) as the binary record stream instead of JSONL.
func (c *Client) Measurements(ctx context.Context, fn func(results.Measurement) error) error {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodGet, c.base+api.V2MeasurementsPath, nil)
		if err != nil {
			return nil, err
		}
		if c.cfg.BinaryEncoding {
			req.Header.Set("Accept", wire.ContentTypeRecords)
		}
		c.apply(req, nil)
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if c.cfg.BinaryEncoding {
		return decodeRecordStream(resp.Body, fn)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var m results.Measurement
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if err := fn(m); err != nil {
			return err
		}
	}
}
