package client

// Tests for the SDK's opt-in binary transport: batch submission, the
// batcher's frame-at-Add encoding, the raw-frame federation path, and the
// negotiated binary measurement export — each asserted to behave exactly
// like its JSON twin.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"encore/internal/api"
	"encore/internal/core"
	"encore/internal/results"
	"encore/internal/wire"
)

func TestBinarySubmitBatch(t *testing.T) {
	backend, store, _ := testCollector(t, 8)
	// A recording proxy pins the wire-level contract: binary bodies carry
	// the records content type and are never gzip-compressed.
	var sawContentType, sawEncoding string
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawContentType = r.Header.Get("Content-Type")
		sawEncoding = r.Header.Get("Content-Encoding")
		backend.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	c := NewWithConfig(proxy.URL, Config{BinaryEncoding: true, GzipThreshold: 1})
	if !c.BinaryEncoding() {
		t.Fatal("BinaryEncoding not reported")
	}
	resp, err := c.SubmitBatch(context.Background(), []api.SubmitRequest{
		{MeasurementID: "m-1", Result: "success", ElapsedMillis: 10},
		{MeasurementID: "m-2", Result: "failure", ElapsedMillis: 20},
		{MeasurementID: "nope", Result: "success"},
	}, &ClientMeta{IP: "198.51.100.7", UserAgent: "Mozilla/5.0 Chrome/39.0"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || len(resp.Rejected) != 1 || resp.Rejected[0].Code != api.CodeUnknownMeasurement {
		t.Fatalf("binary batch response %+v", resp)
	}
	if resp.Load == nil {
		t.Fatal("binary response lost the load signal")
	}
	if sawContentType != wire.ContentTypeRecords {
		t.Fatalf("Content-Type %q", sawContentType)
	}
	if sawEncoding != "" {
		t.Fatalf("binary body was %s-compressed", sawEncoding)
	}
	if store.Len() != 2 {
		t.Fatalf("store has %d, want 2", store.Len())
	}
	if m, _ := store.Get("m-1"); m.Browser != core.BrowserChrome {
		t.Fatalf("binary submission not attributed from ClientMeta: %+v", m)
	}
}

func TestBinaryBatcherFlushesFrames(t *testing.T) {
	_, store, srv := testCollector(t, 256)
	c := NewWithConfig(srv.URL, Config{BinaryEncoding: true})
	b := c.NewBatcher(BatcherConfig{MaxBatch: 16, FlushInterval: -1})
	const n = 16*3 + 5 // three full chunks plus a remainder
	for i := 0; i < n; i++ {
		if err := b.Add(api.SubmitRequest{MeasurementID: fmt.Sprintf("m-%d", i), Result: "success"}); err != nil {
			t.Fatal(err)
		}
	}
	// One rejected member rides along to exercise the stats split.
	if err := b.Add(api.SubmitRequest{MeasurementID: "unregistered", Result: "success"}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	stats := b.Stats()
	if stats.Sent != n || stats.Rejected != 1 || stats.Failed != 0 || stats.Pending != 0 {
		t.Fatalf("batcher stats %+v, want %d sent / 1 rejected", stats, n)
	}
	if store.Len() != n {
		t.Fatalf("store has %d, want %d", store.Len(), n)
	}
}

func TestBinaryForwardAndMeasurements(t *testing.T) {
	upstream, store, srv := testCollector(t, 0)
	upstream.AllowAttributed = true
	c := NewWithConfig(srv.URL, Config{BinaryEncoding: true})
	ctx := context.Background()

	ms := []results.Measurement{
		{
			MeasurementID: "edge-1",
			PatternKey:    "domain:youtube.com",
			TargetURL:     "http://youtube.com/favicon.ico",
			TaskType:      core.TaskImage,
			State:         core.StateFailure,
			ClientIP:      "203.0.113.9",
			Region:        "PK",
			Browser:       core.BrowserChrome,
			Received:      time.Date(2014, 8, 1, 0, 0, 0, 0, time.UTC),
		},
		{
			MeasurementID: "edge-2",
			PatternKey:    "domain:youtube.com",
			TargetURL:     "http://youtube.com/favicon.ico",
			TaskType:      core.TaskImage,
			State:         core.StateSuccess,
			ClientIP:      "203.0.113.10",
			Region:        "PK",
			Browser:       core.BrowserFirefox,
			OriginSite:    "blog.example.org",
			Received:      time.Date(2014, 8, 1, 0, 1, 0, 0, time.UTC),
		},
	}
	resp, err := c.ForwardMeasurements(ctx, ms)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || len(resp.Rejected) != 0 {
		t.Fatalf("binary forward response %+v", resp)
	}
	for _, want := range ms {
		if got, ok := store.Get(want.MeasurementID); !ok || got != want {
			t.Fatalf("forwarded record mutated in flight:\n got %+v\nwant %+v", got, want)
		}
	}

	// The raw-frame path ships pre-framed bytes verbatim.
	frame, err := wire.AppendRecordFrame(nil, 42, 42, (*wire.Record)(&ms[0]))
	if err != nil {
		t.Fatal(err)
	}
	upgraded := ms[0]
	upgraded.State = core.StateSuccess
	frame, err = wire.AppendRecordFrame(frame, 43, 43, (*wire.Record)(&upgraded))
	if err != nil {
		t.Fatal(err)
	}
	fresp, err := c.ForwardRecordFrames(ctx, frame)
	if err != nil {
		t.Fatal(err)
	}
	if fresp.Accepted != 2 {
		t.Fatalf("raw-frame forward response %+v", fresp)
	}
	if got, _ := store.Get("edge-1"); got.State != core.StateSuccess {
		t.Fatalf("raw-frame upgrade not applied: %+v", got)
	}

	// The binary export streams back exactly what the JSON export would.
	var binary []results.Measurement
	if err := c.Measurements(ctx, func(m results.Measurement) error {
		binary = append(binary, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	jsonClient := New(srv.URL)
	var jsonl []results.Measurement
	if err := jsonClient.Measurements(ctx, func(m results.Measurement) error {
		jsonl = append(jsonl, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(binary, jsonl) {
		t.Fatalf("binary export diverged from JSONL export:\n got %+v\nwant %+v", binary, jsonl)
	}
}
