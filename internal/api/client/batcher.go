package client

import (
	"context"
	"errors"
	"sync"
	"time"

	"encore/internal/api"
	"encore/internal/wire"
)

// ErrBatcherClosed is returned by Add after Close has begun.
var ErrBatcherClosed = errors.New("client: batcher closed")

// BatcherConfig parameterizes a Batcher. Zero fields fall back to defaults.
type BatcherConfig struct {
	// MaxBatch flushes when this many submissions are buffered (default 64).
	MaxBatch int
	// FlushInterval flushes whatever is buffered this often, so a trickle
	// of submissions never waits indefinitely (default 200ms; negative
	// disables timed flushes).
	FlushInterval time.Duration
	// Meta is the client identity attached to every flushed batch.
	Meta *ClientMeta
	// OnError observes flush failures (after the client's own retries);
	// nil drops them into Stats only.
	OnError func(error)
}

// Batcher coalesces individual v2 submissions into batched POSTs: callers
// Add single results as they happen (the beacon cadence) and the batcher
// ships them MaxBatch at a time, or on a timer, over one reused connection.
// It is safe for concurrent use.
type Batcher struct {
	client *Client
	cfg    BatcherConfig

	mu      sync.Mutex
	pending []api.SubmitRequest
	// Binary mode (the client's BinaryEncoding): submissions are encoded to
	// frames at Add time — binBuf is the growing frame stream, binOff marks
	// each frame's start so Flush can chunk by MaxBatch. No DTO slice, no
	// flush-time re-encode.
	binBuf []byte
	binOff []int
	closed bool

	flushCh chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	statsMu  sync.Mutex
	sent     uint64
	rejected uint64
	failed   uint64
}

// BatcherStats reports a batcher's lifetime counters.
type BatcherStats struct {
	// Sent counts submissions the upstream accepted.
	Sent uint64
	// Rejected counts submissions the upstream refused individually.
	Rejected uint64
	// Failed counts submissions dropped because a whole batch POST failed
	// after retries.
	Failed uint64
	// Pending counts submissions buffered but not yet flushed.
	Pending int
}

// NewBatcher creates a running batcher on top of an SDK client.
func (c *Client) NewBatcher(cfg BatcherConfig) *Batcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 200 * time.Millisecond
	}
	b := &Batcher{
		client:  c,
		cfg:     cfg,
		flushCh: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// Add buffers one submission, flushing in the background once MaxBatch are
// pending.
func (b *Batcher) Add(sub api.SubmitRequest) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBatcherClosed
	}
	var full bool
	if b.client.BinaryEncoding() {
		b.binOff = append(b.binOff, len(b.binBuf))
		wsub := wire.Submission(sub)
		b.binBuf = wire.AppendSubmissionFrame(b.binBuf, &wsub)
		full = len(b.binOff) >= b.cfg.MaxBatch
	} else {
		b.pending = append(b.pending, sub)
		full = len(b.pending) >= b.cfg.MaxBatch
	}
	b.mu.Unlock()
	if full {
		select {
		case b.flushCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// run drives timed and size-triggered flushes until Close.
func (b *Batcher) run() {
	defer b.wg.Done()
	var tick <-chan time.Time
	if b.cfg.FlushInterval > 0 {
		t := time.NewTicker(b.cfg.FlushInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-b.done:
			return
		case <-b.flushCh:
		case <-tick:
		}
		b.Flush(context.Background())
	}
}

// Flush sends everything currently buffered and blocks until the POST
// completes. A failed batch (after the client's retries) is dropped and
// counted in Stats.Failed.
func (b *Batcher) Flush(ctx context.Context) {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	frames, offsets := b.binBuf, b.binOff
	b.binBuf, b.binOff = nil, nil
	b.mu.Unlock()
	record := func(count int, resp *api.BatchSubmitResponse, err error) {
		b.statsMu.Lock()
		if err != nil {
			b.failed += uint64(count)
		} else {
			b.sent += uint64(resp.Accepted)
			b.rejected += uint64(len(resp.Rejected))
		}
		b.statsMu.Unlock()
		if err != nil && b.cfg.OnError != nil {
			b.cfg.OnError(err)
		}
	}
	for len(batch) > 0 {
		n := len(batch)
		if n > b.cfg.MaxBatch {
			n = b.cfg.MaxBatch
		}
		chunk := batch[:n]
		batch = batch[n:]
		resp, err := b.client.SubmitBatch(ctx, chunk, b.cfg.Meta)
		record(len(chunk), resp, err)
	}
	// Binary mode: the frames were encoded at Add time; ship MaxBatch-frame
	// slices of the stream as-is. Offsets are absolute into frames, so
	// chunking is pure slicing.
	for len(offsets) > 0 {
		n := len(offsets)
		if n > b.cfg.MaxBatch {
			n = b.cfg.MaxBatch
		}
		end := len(frames)
		if n < len(offsets) {
			end = offsets[n]
		}
		chunk := frames[offsets[0]:end]
		offsets = offsets[n:]
		resp, err := b.client.submitRecordFrames(ctx, chunk, b.cfg.Meta)
		record(n, resp, err)
	}
}

// Close stops the background goroutine — waiting out any flush it has in
// flight, so no chunk can be mid-POST and unaccounted — then drains the
// remaining buffer.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.done)
	b.wg.Wait()
	b.Flush(context.Background())
}

// Stats returns the batcher's lifetime counters.
func (b *Batcher) Stats() BatcherStats {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	b.mu.Lock()
	pending := len(b.pending) + len(b.binOff)
	b.mu.Unlock()
	return BatcherStats{Sent: b.sent, Rejected: b.rejected, Failed: b.failed, Pending: pending}
}
