package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"encore/internal/api"
	"encore/internal/collectserver"
	"encore/internal/coordserver"
	"encore/internal/core"
	"encore/internal/geo"
	"encore/internal/pipeline"
	"encore/internal/results"
	"encore/internal/scheduler"
)

// testCollector builds a collection server with n registered tasks, no abuse
// guard, and an httptest listener.
func testCollector(t *testing.T, n int) (*collectserver.Server, *results.Store, *httptest.Server) {
	t.Helper()
	store := results.NewStore()
	index := results.NewTaskIndex()
	g := geo.NewRegistry(1)
	s := collectserver.New(store, index, g)
	s.Guard = nil
	for i := 0; i < n; i++ {
		index.Register(core.Task{
			MeasurementID: fmt.Sprintf("m-%d", i),
			Type:          core.TaskImage,
			TargetURL:     "http://example.com/favicon.ico",
			PatternKey:    "domain:example.com",
		})
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, store, srv
}

func TestSubmitBeaconAndBatch(t *testing.T) {
	_, store, srv := testCollector(t, 8)
	c := New(srv.URL)
	ctx := context.Background()

	if err := c.SubmitBeacon(ctx, "m-0", "success", 120, &ClientMeta{
		IP: "198.51.100.7", UserAgent: "Mozilla/5.0 Chrome/39.0",
	}); err != nil {
		t.Fatal(err)
	}
	m, ok := store.Get("m-0")
	if !ok || m.Browser != core.BrowserChrome {
		t.Fatalf("beacon submission not stored/attributed: %+v", m)
	}

	resp, err := c.SubmitBatch(ctx, []api.SubmitRequest{
		{MeasurementID: "m-1", Result: "success", ElapsedMillis: 10},
		{MeasurementID: "m-2", Result: "failure", ElapsedMillis: 20},
		{MeasurementID: "nope", Result: "success"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || len(resp.Rejected) != 1 || resp.Rejected[0].Code != api.CodeUnknownMeasurement {
		t.Fatalf("batch response %+v", resp)
	}
	if store.Len() != 3 {
		t.Fatalf("store has %d, want 3", store.Len())
	}

	// Typed error surfaces from the single-submission helper.
	err = c.Submit(ctx, api.SubmitRequest{MeasurementID: "unregistered", Result: "success"}, nil)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnknownMeasurement {
		t.Fatalf("Submit error = %v, want typed unknown_measurement", err)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Measurements != 3 {
		t.Fatalf("health %+v", h)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	backend, _, _ := testCollector(t, 4)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "upstream hiccup", http.StatusServiceUnavailable)
			return
		}
		backend.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	c := NewWithConfig(flaky.URL, Config{Retries: 3, RetryBackoff: time.Millisecond})
	if err := c.SubmitBeacon(context.Background(), "m-0", "success", 1, nil); err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}

	// Exhausted retries surface the last error.
	calls.Store(-100)
	err := c.SubmitBeacon(context.Background(), "m-0", "success", 1, nil)
	if err == nil {
		t.Fatal("expected failure after exhausted retries")
	}
	if got := calls.Load(); got != -97 {
		t.Fatalf("server saw %d attempts after reset, want 3", got+100)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	// 4xx responses — including 429, the abuse guard's verdict, which
	// retrying would only amplify — surface immediately, untried.
	for _, tc := range []struct {
		status int
		code   string
	}{
		{http.StatusNotFound, api.CodeUnknownMeasurement},
		{http.StatusTooManyRequests, api.CodeRateLimited},
	} {
		var calls atomic.Int64
		counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			http.Error(w, tc.code, tc.status)
		}))
		c := NewWithConfig(counting.URL, Config{Retries: 5, RetryBackoff: time.Millisecond})
		err := c.SubmitBeacon(context.Background(), "whatever", "success", 1, nil)
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != tc.code {
			t.Fatalf("status %d: err=%v, want typed %s", tc.status, err, tc.code)
		}
		if calls.Load() != 1 {
			t.Fatalf("status %d retried %d times", tc.status, calls.Load())
		}
		counting.Close()
	}
}

func TestClientGzipsLargeBatches(t *testing.T) {
	var sawGzip atomic.Bool
	backend, store, _ := testCollector(t, 512)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Encoding") == "gzip" {
			sawGzip.Store(true)
		}
		backend.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	c := NewWithConfig(proxy.URL, Config{GzipThreshold: 1024})
	subs := make([]api.SubmitRequest, 512)
	for i := range subs {
		subs[i] = api.SubmitRequest{MeasurementID: fmt.Sprintf("m-%d", i), Result: "success"}
	}
	resp, err := c.SubmitBatch(context.Background(), subs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 512 {
		t.Fatalf("accepted %d", resp.Accepted)
	}
	if !sawGzip.Load() {
		t.Fatal("large batch was not gzip-compressed")
	}
	if store.Len() != 512 {
		t.Fatalf("store has %d", store.Len())
	}
}

func TestTasksEndToEnd(t *testing.T) {
	ts := pipeline.NewTaskSet()
	ts.Add(pipeline.Candidate{
		PatternKey: "domain:youtube.com",
		Type:       core.TaskImage,
		TargetURL:  "http://youtube.com/favicon.ico",
		Strict:     true,
	})
	sched := scheduler.New(ts, scheduler.DefaultConfig())
	index := results.NewTaskIndex()
	g := geo.NewRegistry(2)
	coord := coordserver.New(sched, index, g, core.SnippetOptions{
		CoordinatorURL: "//coordinator.example.org",
		CollectorURL:   "//collector.example.org",
	})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	c := New(srv.URL)
	resp, err := c.Tasks(context.Background(), api.TaskRequest{DwellSeconds: 60, IncludeScript: true}, &ClientMeta{
		UserAgent: "Mozilla/5.0 Chrome/39.0 Safari/537.36",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tasks) == 0 {
		t.Fatal("no tasks")
	}
	for _, task := range resp.Tasks {
		if task.Script == "" || task.PatternKey != "domain:youtube.com" {
			t.Fatalf("task %+v", task)
		}
		if _, ok := index.Lookup(task.MeasurementID); !ok {
			t.Fatalf("task %s not registered", task.MeasurementID)
		}
	}
}

func TestMeasurementsStream(t *testing.T) {
	_, store, srv := testCollector(t, 4)
	c := New(srv.URL)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := c.SubmitBeacon(ctx, fmt.Sprintf("m-%d", i), "success", float64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	var streamed []results.Measurement
	if err := c.Measurements(ctx, func(m results.Measurement) error {
		streamed = append(streamed, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != store.Len() {
		t.Fatalf("streamed %d, store has %d", len(streamed), store.Len())
	}
	all := store.All()
	for i := range all {
		// The JSON round trip drops the monotonic clock reading; compare
		// wall-clock instants and strip Received for the struct equality.
		if !streamed[i].Received.Equal(all[i].Received) {
			t.Fatalf("record %d Received diverged: %v vs %v", i, streamed[i].Received, all[i].Received)
		}
		got, want := streamed[i], all[i]
		got.Received, want.Received = time.Time{}, time.Time{}
		if got != want {
			t.Fatalf("record %d diverged:\n%+v\n%+v", i, got, want)
		}
	}
}

func TestBatcherSizeAndIntervalFlush(t *testing.T) {
	_, store, srv := testCollector(t, 256)
	c := New(srv.URL)

	// Size-triggered flush: no timer, MaxBatch 32.
	b := c.NewBatcher(BatcherConfig{MaxBatch: 32, FlushInterval: -1})
	for i := 0; i < 32; i++ {
		if err := b.Add(api.SubmitRequest{MeasurementID: fmt.Sprintf("m-%d", i), Result: "success"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for store.Len() < 32 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if store.Len() != 32 {
		t.Fatalf("size-triggered flush stored %d, want 32", store.Len())
	}

	// Interval-triggered flush for a trickle below MaxBatch.
	if err := b.Add(api.SubmitRequest{MeasurementID: "m-100", Result: "success"}); err != nil {
		t.Fatal(err)
	}
	b.Close() // drains the trickle
	if _, ok := store.Get("m-100"); !ok {
		t.Fatal("Close did not drain the pending submission")
	}
	if err := b.Add(api.SubmitRequest{MeasurementID: "m-101", Result: "success"}); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("Add after Close = %v", err)
	}
	st := b.Stats()
	if st.Sent != 33 || st.Pending != 0 || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}

	// Timer-driven batcher flushes without reaching MaxBatch.
	b2 := c.NewBatcher(BatcherConfig{MaxBatch: 1000, FlushInterval: 5 * time.Millisecond})
	defer b2.Close()
	if err := b2.Add(api.SubmitRequest{MeasurementID: "m-102", Result: "success"}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := store.Get("m-102"); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := store.Get("m-102"); !ok {
		t.Fatal("interval flush never happened")
	}
}

func TestBatcherConcurrentAdds(t *testing.T) {
	_, store, srv := testCollector(t, 1024)
	c := New(srv.URL)
	b := c.NewBatcher(BatcherConfig{MaxBatch: 64, FlushInterval: 10 * time.Millisecond})

	var wg sync.WaitGroup
	const workers, perWorker = 8, 128
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_ = b.Add(api.SubmitRequest{
					MeasurementID: fmt.Sprintf("m-%d", w*perWorker+i),
					Result:        "success",
				})
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	if want := workers * perWorker; store.Len() != want {
		t.Fatalf("store has %d after concurrent batched adds, want %d", store.Len(), want)
	}
	st := b.Stats()
	if st.Sent != uint64(workers*perWorker) || st.Rejected != 0 || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
}
