package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testRouter(cors bool) *Router {
	rt := NewRouter()
	if cors {
		rt.EnableCORS()
	}
	rt.HandleFunc(http.MethodGet, V1SubmitPath, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "submit")
	})
	rt.HandleFunc(http.MethodPost, V2SubmissionsPath, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "batch")
	})
	rt.HandleFunc(http.MethodGet, V1HealthPath, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	rt.Alias("/v1/submit", V1SubmitPath)
	return rt
}

func do(rt *Router, method, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec
}

func TestRouterExactPathOnly(t *testing.T) {
	rt := testRouter(false)
	if rec := do(rt, http.MethodGet, "/submit"); rec.Code != http.StatusOK || rec.Body.String() != "submit" {
		t.Fatalf("exact path: %d %q", rec.Code, rec.Body.String())
	}
	// The seed servers' HasSuffix dispatch matched these; the router must not.
	for _, path := range []string{"/anything/submit", "/anything/healthz", "/x/v2/submissions", "/submit/"} {
		if rec := do(rt, http.MethodGet, path); rec.Code != http.StatusNotFound {
			t.Fatalf("suffix path %s: status %d, want 404", path, rec.Code)
		}
	}
	if rec := do(rt, http.MethodGet, "/missing"); rec.Body.String() != "404 page not found\n" {
		t.Fatalf("default 404 body changed: %q", rec.Body.String())
	}
}

func TestRouterMethodNotAllowed(t *testing.T) {
	rt := testRouter(false)
	rec := do(rt, http.MethodPost, "/submit")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status=%d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "GET" {
		t.Fatalf("Allow=%q", allow)
	}
	if strings.TrimSpace(rec.Body.String()) != CodeMethodNotAllowed {
		t.Fatalf("body=%q", rec.Body.String())
	}
	if rec := do(rt, http.MethodGet, V2SubmissionsPath); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST-only path: %d", rec.Code)
	}
}

// TestRouterV2ErrorsAreJSON pins the v2 error contract: 404/405 on /v2/*
// paths carry typed JSON bodies, while the v1 surface keeps its plain text.
func TestRouterV2ErrorsAreJSON(t *testing.T) {
	rt := testRouter(false)

	rec := do(rt, http.MethodGet, "/v2/nonexistent")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("v2 404 status=%d", rec.Code)
	}
	var e Error
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != CodeNotFound {
		t.Fatalf("v2 404 body=%q err=%v", rec.Body.String(), err)
	}

	rec = do(rt, http.MethodGet, V2SubmissionsPath)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("v2 405 status=%d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != CodeMethodNotAllowed {
		t.Fatalf("v2 405 body=%q err=%v", rec.Body.String(), err)
	}

	// v1 surfaces stay plain text.
	if rec := do(rt, http.MethodGet, "/missing"); rec.Body.String() != "404 page not found\n" {
		t.Fatalf("v1 404 body=%q", rec.Body.String())
	}
	if rec := do(rt, http.MethodPost, V1SubmitPath); strings.TrimSpace(rec.Body.String()) != CodeMethodNotAllowed {
		t.Fatalf("v1 405 body=%q", rec.Body.String())
	}
}

func TestRouterAlias(t *testing.T) {
	rt := testRouter(false)
	rec := do(rt, http.MethodGet, "/v1/submit")
	if rec.Code != http.StatusOK || rec.Body.String() != "submit" {
		t.Fatalf("alias: %d %q", rec.Code, rec.Body.String())
	}
	if rec := do(rt, http.MethodPost, "/v1/submit"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("alias method filtering: %d", rec.Code)
	}
}

func TestRouterCORSPreflight(t *testing.T) {
	rt := testRouter(true)
	rec := do(rt, http.MethodOptions, V2SubmissionsPath)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("preflight status=%d", rec.Code)
	}
	h := rec.Header()
	if h.Get("Access-Control-Allow-Origin") != "*" {
		t.Fatal("missing Allow-Origin")
	}
	if methods := h.Get("Access-Control-Allow-Methods"); !strings.Contains(methods, "POST") || !strings.Contains(methods, "OPTIONS") {
		t.Fatalf("Allow-Methods=%q", methods)
	}
	if headers := h.Get("Access-Control-Allow-Headers"); !strings.Contains(headers, "Content-Type") || !strings.Contains(headers, "Content-Encoding") {
		t.Fatalf("Allow-Headers=%q", headers)
	}
	// Ordinary responses carry the origin header too.
	if rec := do(rt, http.MethodGet, "/submit"); rec.Header().Get("Access-Control-Allow-Origin") != "*" {
		t.Fatal("GET response missing Allow-Origin")
	}
	// Preflight for an unregistered path is a plain 404.
	if rec := do(rt, http.MethodOptions, "/missing"); rec.Code != http.StatusNotFound {
		t.Fatalf("preflight on unknown path: %d", rec.Code)
	}
}

func TestRouterWithoutCORSRejectsOptions(t *testing.T) {
	rt := testRouter(false)
	rec := do(rt, http.MethodOptions, "/submit")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("OPTIONS without CORS: %d, want 405", rec.Code)
	}
	if rec.Header().Get("Access-Control-Allow-Origin") != "" {
		t.Fatal("CORS header emitted while disabled")
	}
}
