package netsim

import (
	"strings"
	"testing"

	"encore/internal/censor"
	"encore/internal/geo"
	"encore/internal/webgen"
)

func testNetwork(t *testing.T, eng *censor.Engine) *Network {
	t.Helper()
	web := webgen.Generate(webgen.Config{
		Seed:           1,
		TargetDomains:  webgen.HighValueTargets(),
		GenericDomains: 10,
		CDNDomains:     2,
		PagesPerDomain: 10,
	})
	if eng == nil {
		eng = censor.NewEngine()
	}
	return New(Config{Web: web, Censor: eng, Geo: geo.NewRegistry(1), Seed: 7})
}

func reliableClient(t *testing.T, n *Network, region geo.CountryCode) Client {
	t.Helper()
	c, err := n.NewClient(region)
	if err != nil {
		t.Fatal(err)
	}
	c.Unreliability = 0 // make individual assertions deterministic
	return c
}

func TestNewRequiresDependencies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil dependencies")
		}
	}()
	New(Config{})
}

func TestNewClientProfile(t *testing.T) {
	n := testNetwork(t, nil)
	c, err := n.NewClient("IN")
	if err != nil {
		t.Fatal(err)
	}
	if c.Region != "IN" || c.IP == nil {
		t.Fatalf("client incomplete: %+v", c)
	}
	if c.RTTMillis <= 0 || c.BandwidthKBps <= 0 || c.PatienceMillis <= 0 {
		t.Fatalf("client network parameters not set: %+v", c)
	}
	if c.Unreliability <= 0 {
		t.Fatal("India should have non-zero unreliability (drives §7.1 false positives)")
	}
	if _, err := n.NewClient("XX"); err == nil {
		t.Fatal("expected error for unknown region")
	}
}

func TestFetchUnfilteredSucceeds(t *testing.T) {
	n := testNetwork(t, nil)
	c := reliableClient(t, n, "US")
	fav, ok := n.Web.FaviconOf("youtube.com")
	if !ok {
		t.Skip("no favicon in this seed")
	}
	res := n.Fetch(c, fav.URL, false)
	if !res.Succeeded() {
		t.Fatalf("unfiltered fetch failed: %s", DescribeResult(res))
	}
	if res.BytesReceived != fav.SizeBytes {
		t.Fatalf("BytesReceived=%d, want %d", res.BytesReceived, fav.SizeBytes)
	}
	if res.GroundTruthFiltered {
		t.Fatal("unfiltered fetch marked as filtered")
	}
	if res.DurationMillis <= 0 {
		t.Fatal("duration not modelled")
	}
}

func TestFetchUnknownDomainIsDNSFailure(t *testing.T) {
	n := testNetwork(t, nil)
	c := reliableClient(t, n, "US")
	res := n.Fetch(c, "http://does-not-exist-7913.invalid/favicon.ico", false)
	if res.Outcome != OutcomeDNSFailure {
		t.Fatalf("outcome=%v, want dns-failure", res.Outcome)
	}
	if res.GroundTruthFiltered {
		t.Fatal("nonexistent domain should not count as filtered")
	}
}

func TestFetchUnknownPathIs404(t *testing.T) {
	n := testNetwork(t, nil)
	c := reliableClient(t, n, "US")
	res := n.Fetch(c, "http://youtube.com/no/such/object.png", false)
	if res.Outcome != OutcomeHTTPError || res.HTTPStatus != 404 {
		t.Fatalf("result=%s", DescribeResult(res))
	}
	if res.Succeeded() {
		t.Fatal("404 must not count as success")
	}
}

func TestCensorshipMechanismsObservables(t *testing.T) {
	cases := []struct {
		mechanism censor.Mechanism
		check     func(t *testing.T, r FetchResult)
	}{
		{censor.MechanismDNSNXDOMAIN, func(t *testing.T, r FetchResult) {
			if r.Outcome != OutcomeDNSFailure {
				t.Fatalf("outcome=%v", r.Outcome)
			}
		}},
		{censor.MechanismDNSRedirect, func(t *testing.T, r FetchResult) {
			if r.Outcome != OutcomeSuccess || r.ContentValid {
				t.Fatalf("DNS redirect should deliver invalid content: %s", DescribeResult(r))
			}
			if r.Succeeded() {
				t.Fatal("block page must not count as success")
			}
		}},
		{censor.MechanismTCPReset, func(t *testing.T, r FetchResult) {
			if r.Outcome != OutcomeConnectFailure {
				t.Fatalf("outcome=%v", r.Outcome)
			}
		}},
		{censor.MechanismPacketDrop, func(t *testing.T, r FetchResult) {
			if r.Outcome != OutcomeTimeout {
				t.Fatalf("outcome=%v", r.Outcome)
			}
		}},
		{censor.MechanismHTTPBlockPage, func(t *testing.T, r FetchResult) {
			if r.Outcome != OutcomeSuccess || r.ContentValid || r.MIMEType != "text/html" {
				t.Fatalf("block page observables wrong: %s", DescribeResult(r))
			}
		}},
		{censor.MechanismHTTPDrop, func(t *testing.T, r FetchResult) {
			if r.Outcome != OutcomeTimeout {
				t.Fatalf("outcome=%v", r.Outcome)
			}
		}},
		{censor.MechanismThrottle, func(t *testing.T, r FetchResult) {
			if r.Outcome != OutcomeTimeout && r.DurationMillis < 10_000 {
				t.Fatalf("throttled fetch should be slow or time out: %s", DescribeResult(r))
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.mechanism.String(), func(t *testing.T) {
			eng := censor.NewEngine()
			pol := &censor.Policy{Region: "CN"}
			pol.AddDomain("facebook.com", tc.mechanism, "test")
			eng.SetPolicy(pol)
			n := testNetwork(t, eng)
			c := reliableClient(t, n, "CN")
			res := n.Fetch(c, "http://facebook.com/favicon.ico", false)
			if !res.GroundTruthFiltered || res.GroundTruthMechanism != tc.mechanism {
				t.Fatalf("ground truth not recorded: %s", DescribeResult(res))
			}
			if res.Succeeded() {
				t.Fatalf("filtered fetch must not succeed: %s", DescribeResult(res))
			}
			tc.check(t, res)
		})
	}
}

func TestFilteringOnlyAffectsPolicyRegion(t *testing.T) {
	n := testNetwork(t, censor.PaperPolicies())
	fav, ok := n.Web.FaviconOf("youtube.com")
	if !ok {
		t.Skip("no favicon in this seed")
	}
	us := reliableClient(t, n, "US")
	pk := reliableClient(t, n, "PK")
	if !n.Fetch(us, fav.URL, false).Succeeded() {
		t.Fatal("US fetch of youtube.com should succeed")
	}
	if n.Fetch(pk, fav.URL, false).Succeeded() {
		t.Fatal("PK fetch of youtube.com should be filtered")
	}
}

func TestUnreliabilityCausesSpuriousFailures(t *testing.T) {
	n := testNetwork(t, nil)
	c, err := n.NewClient("IN")
	if err != nil {
		t.Fatal(err)
	}
	c.Unreliability = 0.5
	fav, ok := n.Web.FaviconOf("wikipedia.org")
	if !ok {
		t.Skip("no favicon in this seed")
	}
	failures := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		if !n.Fetch(c, fav.URL, false).Succeeded() {
			failures++
		}
	}
	if failures < trials/4 || failures > 3*trials/4 {
		t.Fatalf("with unreliability 0.5, %d/%d fetches failed", failures, trials)
	}
}

func TestRegisteredHostServed(t *testing.T) {
	n := testNetwork(t, nil)
	n.RegisterHost("coordinator.encore-test.org", HostFunc(func(url string) (int, string, int, bool) {
		if strings.HasSuffix(url, "/task.js") {
			return 200, "application/javascript", 2048, true
		}
		return 0, "", 0, false
	}))
	c := reliableClient(t, n, "US")
	res := n.Fetch(c, "http://coordinator.encore-test.org/task.js", false)
	if !res.Succeeded() || res.MIMEType != "application/javascript" {
		t.Fatalf("registered host not served: %s", DescribeResult(res))
	}
	res = n.Fetch(c, "http://coordinator.encore-test.org/missing", false)
	if res.Outcome != OutcomeHTTPError || res.HTTPStatus != 404 {
		t.Fatalf("missing path should 404: %s", DescribeResult(res))
	}
}

func TestInfraBlockingPreventsTaskFetch(t *testing.T) {
	eng := censor.NewEngine()
	eng.SetPolicy(&censor.Policy{Region: "IR", BlockMeasurementInfra: []string{"coordinator.encore-test.org"}})
	n := testNetwork(t, eng)
	n.RegisterHost("coordinator.encore-test.org", HostFunc(func(string) (int, string, int, bool) {
		return 200, "application/javascript", 1024, true
	}))
	ir := reliableClient(t, n, "IR")
	if n.Fetch(ir, "http://coordinator.encore-test.org/task.js", false).Succeeded() {
		t.Fatal("blocked infrastructure should be unreachable from IR")
	}
	us := reliableClient(t, n, "US")
	if !n.Fetch(us, "http://coordinator.encore-test.org/task.js", false).Succeeded() {
		t.Fatal("infrastructure should be reachable from US")
	}
}

func TestDistortingAdversary(t *testing.T) {
	eng := censor.NewEngine()
	pol := &censor.Policy{Region: "CN", AllowMeasurementTraffic: true}
	pol.AddDomain("twitter.com", censor.MechanismTCPReset, "")
	eng.SetPolicy(pol)
	n := testNetwork(t, eng)
	c := reliableClient(t, n, "CN")
	fav, ok := n.Web.FaviconOf("twitter.com")
	if !ok {
		t.Skip("no favicon in this seed")
	}
	if n.Fetch(c, fav.URL, false).Succeeded() {
		t.Fatal("unmarked traffic should be filtered")
	}
	if !n.Fetch(c, fav.URL, true).Succeeded() {
		t.Fatal("marked measurement traffic should pass the distorting adversary")
	}
}

func TestFetchTimingCachedMuchFasterThanUncached(t *testing.T) {
	n := testNetwork(t, nil)
	c := reliableClient(t, n, "BR")
	slower := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		uncached := n.FetchTiming(c, 1024, false)
		cached := n.FetchTiming(c, 1024, true)
		if cached > 10 {
			t.Fatalf("cached load took %.1fms, expected tens of ms at most", cached)
		}
		if uncached > cached+50 {
			slower++
		}
	}
	// Figure 7: most clients take at least 50 ms longer uncached.
	if slower < trials*7/10 {
		t.Fatalf("only %d/%d uncached loads were >=50ms slower than cached", slower, trials)
	}
}

func TestPatienceZeroDefaults(t *testing.T) {
	n := testNetwork(t, nil)
	c := reliableClient(t, n, "US")
	c.PatienceMillis = 0
	fav, ok := n.Web.FaviconOf("github.com")
	if !ok {
		t.Skip("no favicon in this seed")
	}
	if res := n.Fetch(c, fav.URL, false); !res.Succeeded() {
		t.Fatalf("zero patience should fall back to default, got %s", DescribeResult(res))
	}
}

func TestDescribeResult(t *testing.T) {
	r := FetchResult{URL: "http://x.com/", Outcome: OutcomeSuccess, HTTPStatus: 200,
		ContentValid: true, GroundTruthFiltered: true, GroundTruthMechanism: censor.MechanismTCPReset}
	s := DescribeResult(r)
	if !strings.Contains(s, "x.com") || !strings.Contains(s, "filtered:tcp-reset") {
		t.Fatalf("DescribeResult=%q", s)
	}
	if OutcomeDNSFailure.String() != "dns-failure" || Outcome(99).String() == "" {
		t.Fatal("outcome strings broken")
	}
}

func TestConcurrentFetchesSafe(t *testing.T) {
	n := testNetwork(t, censor.PaperPolicies())
	fav, ok := n.Web.FaviconOf("youtube.com")
	if !ok {
		t.Skip("no favicon in this seed")
	}
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			c, _ := n.NewClient("US")
			for i := 0; i < 50; i++ {
				n.Fetch(c, fav.URL, false)
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
