// Package netsim simulates the network path between a Web client and the
// servers it fetches from: DNS resolution, TCP connection establishment, and
// the HTTP exchange, with the regional censor (internal/censor) interposed on
// the path and a latency/loss model parameterized per country.
//
// The paper's clients are real browsers on real networks; this simulator
// substitutes for those networks while preserving the only things Encore's
// measurement tasks can observe: whether a fetch completes, what content
// (real, block page, or nothing) arrives, and how long the fetch takes.
// Ground-truth fields (whether the censor actually interfered) are carried on
// results for experiment scoring only and are never consulted by the
// measurement or inference code.
package netsim

import (
	"fmt"
	"net"
	"strings"
	"sync"

	"encore/internal/censor"
	"encore/internal/geo"
	"encore/internal/stats"
	"encore/internal/urlpattern"
	"encore/internal/webgen"
)

// Outcome classifies what the client observes at the network level.
type Outcome int

const (
	// OutcomeSuccess means the full response arrived.
	OutcomeSuccess Outcome = iota
	// OutcomeDNSFailure means name resolution failed (NXDOMAIN/SERVFAIL).
	OutcomeDNSFailure
	// OutcomeConnectFailure means the TCP connection was refused or reset.
	OutcomeConnectFailure
	// OutcomeTimeout means the fetch exceeded the client's patience.
	OutcomeTimeout
	// OutcomeHTTPError means the server returned a non-success status.
	OutcomeHTTPError
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "success"
	case OutcomeDNSFailure:
		return "dns-failure"
	case OutcomeConnectFailure:
		return "connect-failure"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeHTTPError:
		return "http-error"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Client is the network-level view of one measurement vantage point.
type Client struct {
	Region geo.CountryCode
	IP     net.IP
	// RTTMillis is the client's typical round-trip time to well-connected
	// content.
	RTTMillis float64
	// Unreliability is the per-fetch probability of a spurious,
	// non-censorship failure.
	Unreliability float64
	// BandwidthKBps is the client's downstream bandwidth.
	BandwidthKBps float64
	// PatienceMillis bounds how long a fetch may take before the browser
	// gives up; fetches exceeding it report OutcomeTimeout.
	PatienceMillis float64
}

// FetchResult describes one completed (or failed) fetch.
type FetchResult struct {
	URL            string
	Outcome        Outcome
	HTTPStatus     int
	MIMEType       string
	BytesReceived  int
	DurationMillis float64
	// ContentValid reports whether the bytes received are the genuine
	// resource (false when a block page or other substituted content was
	// served). Browsers observe this indirectly: an <img> pointing at a
	// block page fails to render, a style sheet replaced by HTML does not
	// apply its rules.
	ContentValid bool
	// FromCache reports whether the resource was served from the browser
	// cache without touching the network (set by the browser layer).
	FromCache bool

	// Ground truth for experiment scoring only.
	GroundTruthFiltered  bool
	GroundTruthMechanism censor.Mechanism
}

// Succeeded reports whether the fetch delivered the genuine resource.
func (r FetchResult) Succeeded() bool {
	return r.Outcome == OutcomeSuccess && r.ContentValid
}

// Host serves HTTP content for a domain that is not part of the synthetic Web
// (Encore's coordination, collection, and origin servers, or testbed
// servers). Serve returns the response status, MIME type, and body size for
// a URL; ok=false means the host has no resource at that URL (HTTP 404).
type Host interface {
	Serve(url string) (status int, mimeType string, size int, ok bool)
}

// HostFunc adapts a function to the Host interface.
type HostFunc func(url string) (int, string, int, bool)

// Serve implements Host.
func (f HostFunc) Serve(url string) (int, string, int, bool) { return f(url) }

// Network simulates fetches against the synthetic Web plus any registered
// hosts, through a censor engine. It is safe for concurrent use.
type Network struct {
	Web    *webgen.Web
	Censor *censor.Engine
	Geo    *geo.Registry

	mu           sync.Mutex
	rng          *stats.RNG
	hosts        map[string]Host
	extraLatency map[geo.CountryCode]float64
}

// Config parameterizes a Network.
type Config struct {
	Web    *webgen.Web
	Censor *censor.Engine
	Geo    *geo.Registry
	Seed   uint64
}

// New creates a network simulator. Web, Censor, and Geo may not be nil.
func New(cfg Config) *Network {
	if cfg.Web == nil || cfg.Censor == nil || cfg.Geo == nil {
		panic("netsim: Config requires Web, Censor, and Geo")
	}
	return &Network{
		Web:    cfg.Web,
		Censor: cfg.Censor,
		Geo:    cfg.Geo,
		rng:    stats.NewRNG(cfg.Seed),
		hosts:  make(map[string]Host),
	}
}

// RegisterHost attaches a Host implementation to a domain so simulated
// clients can fetch from it (Encore infrastructure, testbed servers).
func (n *Network) RegisterHost(domain string, h Host) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hosts[urlpattern.NormalizeHost(domain)] = h
}

// SetRegionExtraLatency adds a flat per-fetch delay (milliseconds) to every
// fetch originating in the region — the network-path view of a regional
// throttling ramp, distinct from the censor's per-pattern throttle mechanism.
// Zero or negative clears the region's extra latency. Safe to call while
// fetches are in flight; in-flight fetches see either the old or new value.
func (n *Network) SetRegionExtraLatency(region geo.CountryCode, millis float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if millis <= 0 {
		delete(n.extraLatency, region)
		return
	}
	if n.extraLatency == nil {
		n.extraLatency = make(map[geo.CountryCode]float64)
	}
	n.extraLatency[region] = millis
}

// regionExtraLatency reads the region's configured extra delay.
func (n *Network) regionExtraLatency(region geo.CountryCode) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.extraLatency[region]
}

// NewClient builds a client located in the given country, with latency,
// reliability, and bandwidth drawn from the country's profile.
func (n *Network) NewClient(region geo.CountryCode) (Client, error) {
	country, err := n.Geo.Country(region)
	if err != nil {
		return Client{}, err
	}
	ip, err := n.Geo.RandomIP(region)
	if err != nil {
		return Client{}, err
	}
	n.mu.Lock()
	rtt := country.BaseRTTMillis * (0.7 + 0.6*n.rng.Float64())
	bw := 200 + 1800*n.rng.Float64() // 200 KB/s .. 2 MB/s
	n.mu.Unlock()
	return Client{
		Region:         region,
		IP:             ip,
		RTTMillis:      rtt,
		Unreliability:  country.Unreliability,
		BandwidthKBps:  bw,
		PatienceMillis: 30_000,
	}, nil
}

// Fetch simulates the client fetching the URL. measurementMarker indicates
// the request is identifiable as Encore measurement traffic (used only by
// distorting-adversary experiments).
func (n *Network) Fetch(c Client, url string, measurementMarker bool) FetchResult {
	n.mu.Lock()
	rng := n.rng.Fork()
	n.mu.Unlock()
	return n.fetchWithRNG(rng, c, url, measurementMarker)
}

func (n *Network) fetchWithRNG(rng *stats.RNG, c Client, url string, marker bool) FetchResult {
	res := FetchResult{URL: url}
	decision := n.Censor.Evaluate(censor.Request{Region: c.Region, URL: url, MeasurementMarker: marker})
	res.GroundTruthFiltered = decision.Filtered
	res.GroundTruthMechanism = decision.Mechanism

	// A regional throttling ramp slows the whole path before any stage
	// begins; a ramp past the client's patience turns every fetch into a
	// timeout, which is exactly what a saturating throttle looks like.
	elapsed := n.regionExtraLatency(c.Region)
	patience := c.PatienceMillis
	if patience <= 0 {
		patience = 30_000
	}
	if elapsed >= patience {
		res.Outcome = OutcomeTimeout
		res.DurationMillis = patience
		return res
	}

	// Spurious, censorship-unrelated failures (wireless loss, resolver
	// trouble, captive portals). These are what make single measurements
	// unreliable and motivate the binomial test.
	if rng.Bool(c.Unreliability) {
		switch rng.Intn(3) {
		case 0:
			res.Outcome = OutcomeDNSFailure
			res.DurationMillis = elapsed + c.RTTMillis*(2+3*rng.Float64())
		case 1:
			res.Outcome = OutcomeConnectFailure
			res.DurationMillis = elapsed + c.RTTMillis*(1+2*rng.Float64())
		default:
			res.Outcome = OutcomeTimeout
			res.DurationMillis = patience
		}
		return res
	}

	// --- DNS stage ---
	dnsTime := 0.5*c.RTTMillis + 5*rng.Float64()
	elapsed += dnsTime
	if decision.Filtered {
		switch decision.Mechanism {
		case censor.MechanismDNSNXDOMAIN:
			res.Outcome = OutcomeDNSFailure
			res.DurationMillis = elapsed
			return res
		case censor.MechanismDNSRedirect:
			// Resolution "succeeds" but points at the censor's server,
			// which serves a block page over HTTP.
			return n.serveBlockPage(rng, c, res, elapsed)
		}
	}
	host := urlpattern.DomainOf(url)
	resource, inWeb := n.Web.LookupResource(url)
	n.mu.Lock()
	extraHost, isExtra := n.hosts[host]
	n.mu.Unlock()
	_, siteKnown := n.Web.Site(host)
	if !inWeb && !isExtra && !siteKnown {
		// Unknown name: genuine NXDOMAIN (e.g. testbed control for an
		// invalid domain).
		res.Outcome = OutcomeDNSFailure
		res.DurationMillis = elapsed
		return res
	}

	// --- TCP stage ---
	connectTime := c.RTTMillis * (1 + 0.2*rng.Float64())
	elapsed += connectTime
	if decision.Filtered {
		switch decision.Mechanism {
		case censor.MechanismTCPReset:
			res.Outcome = OutcomeConnectFailure
			res.DurationMillis = elapsed
			return res
		case censor.MechanismPacketDrop:
			res.Outcome = OutcomeTimeout
			res.DurationMillis = patience
			return res
		}
	}

	// --- HTTP stage ---
	if decision.Filtered {
		switch decision.Mechanism {
		case censor.MechanismHTTPBlockPage:
			return n.serveBlockPage(rng, c, res, elapsed)
		case censor.MechanismHTTPDrop:
			res.Outcome = OutcomeTimeout
			res.DurationMillis = patience
			return res
		case censor.MechanismThrottle:
			elapsed += decision.ExtraDelayMillis
			if elapsed >= patience {
				res.Outcome = OutcomeTimeout
				res.DurationMillis = patience
				return res
			}
		}
	}

	var status int
	var mime string
	var size int
	switch {
	case isExtra:
		var ok bool
		status, mime, size, ok = extraHost.Serve(url)
		if !ok {
			status, mime, size = 404, "text/html", 512
		}
	case inWeb:
		status, mime, size = 200, resource.MIMEType, resource.SizeBytes
	default:
		// Known site but unknown path: 404.
		status, mime, size = 404, "text/html", 1024
	}

	transferTime := c.RTTMillis*(1+0.3*rng.Float64()) + float64(size)/c.BandwidthKBps
	elapsed += transferTime
	if elapsed >= patience {
		res.Outcome = OutcomeTimeout
		res.DurationMillis = patience
		return res
	}

	res.DurationMillis = elapsed
	res.HTTPStatus = status
	res.MIMEType = mime
	res.BytesReceived = size
	if status >= 200 && status < 300 {
		res.Outcome = OutcomeSuccess
		res.ContentValid = true
	} else {
		res.Outcome = OutcomeHTTPError
	}
	return res
}

// serveBlockPage completes a fetch with substituted censor content: an HTTP
// 200 whose body is a small HTML block page rather than the requested
// resource.
func (n *Network) serveBlockPage(rng *stats.RNG, c Client, res FetchResult, elapsed float64) FetchResult {
	elapsed += c.RTTMillis*(1.5+0.5*rng.Float64()) + 2
	res.DurationMillis = elapsed
	res.Outcome = OutcomeSuccess
	res.HTTPStatus = 200
	res.MIMEType = "text/html"
	res.BytesReceived = 3 * 1024
	res.ContentValid = false
	return res
}

// FetchTiming estimates only the duration of a successful fetch of size bytes
// for the client, without censorship or failures. The browser cache model
// uses it to produce cached-versus-uncached timings (Figure 7).
func (n *Network) FetchTiming(c Client, sizeBytes int, cached bool) float64 {
	n.mu.Lock()
	rng := n.rng.Fork()
	n.mu.Unlock()
	if cached {
		// Cache hits never touch the network: a few milliseconds to read
		// and render from the local cache.
		return 1 + 9*rng.Float64()
	}
	dns := 0.5*c.RTTMillis + 5*rng.Float64()
	connect := c.RTTMillis * (1 + 0.2*rng.Float64())
	transfer := c.RTTMillis*(1+0.3*rng.Float64()) + float64(sizeBytes)/c.BandwidthKBps
	return dns + connect + transfer
}

// DescribeResult renders a result as a compact single line for logs.
func DescribeResult(r FetchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s outcome=%s status=%d bytes=%d dur=%.0fms valid=%v",
		r.URL, r.Outcome, r.HTTPStatus, r.BytesReceived, r.DurationMillis, r.ContentValid)
	if r.GroundTruthFiltered {
		fmt.Fprintf(&b, " [filtered:%s]", r.GroundTruthMechanism)
	}
	return b.String()
}
