package coordserver

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"encore/internal/api"
)

// TestV1GoldenCompat pins the coordination server's v1 surface through the
// new router: exact paths, the /v1/ aliases, the CORS header on every
// response, and byte-stable bodies where the seed's were deterministic.
func TestV1GoldenCompat(t *testing.T) {
	s, _, g := testCoordinator(t)
	srv := httptest.NewServer(s)
	defer srv.Close()

	get := func(path string, headers map[string]string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	// /healthz before any traffic: exact seed text.
	resp, body := get("/healthz", nil)
	if resp.StatusCode != http.StatusOK || body != "ok: 0 task responses served, 0 tasks assigned\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Access-Control-Allow-Origin") != "*" {
		t.Fatal("healthz lost the CORS header")
	}

	// /frame.html: fully deterministic given the snippet.
	resp, body = get("/frame.html", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frame status %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Type") != "text/html" {
		t.Fatalf("frame Content-Type %q", resp.Header.Get("Content-Type"))
	}
	if !strings.HasPrefix(body, "<!DOCTYPE html><html><head><title>encore</title></head><body>") ||
		!strings.Contains(body, "//coordinator.encore-test.org/task.js") {
		t.Fatalf("frame body diverged: %q", body)
	}

	// /task.js (and the /v1 alias): same headers and comment banner as the
	// seed, with executable task JavaScript.
	ip, _ := g.RandomIP("CN")
	headers := map[string]string{
		"User-Agent":      "Mozilla/5.0 Chrome/39.0 Safari/537.36",
		"X-Forwarded-For": ip.String(),
	}
	for _, path := range []string{"/task.js", "/v1/task.js"} {
		resp, body = get(path, headers)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		if resp.Header.Get("Content-Type") != "application/javascript" {
			t.Fatalf("%s Content-Type %q", path, resp.Header.Get("Content-Type"))
		}
		if resp.Header.Get("Cache-Control") != "no-store" {
			t.Fatalf("%s Cache-Control %q", path, resp.Header.Get("Cache-Control"))
		}
		if !strings.HasPrefix(body, "// encore measurement tasks\n") {
			t.Fatalf("%s banner diverged: %q", path, body[:40])
		}
	}

	// Suffix matching is dead; the stock 404 body survives.
	resp, body = get("/nested/task.js", nil)
	if resp.StatusCode != http.StatusNotFound || body != "404 page not found\n" {
		t.Fatalf("suffix path: %d %q", resp.StatusCode, body)
	}
	// Unknown methods are refused.
	postResp, err := http.Post(srv.URL+"/task.js", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /task.js: %d, want 405", postResp.StatusCode)
	}
}

// TestV2Tasks drives GET /v2/tasks: structured task JSON, dwell and script
// parameters, task-index registration, and agreement with what /task.js
// would have rendered for the same assignment.
func TestV2Tasks(t *testing.T) {
	s, index, g := testCoordinator(t)
	srv := httptest.NewServer(s)
	defer srv.Close()

	ip, _ := g.RandomIP("IR")
	req, _ := http.NewRequest(http.MethodGet, srv.URL+api.V2TasksPath+"?dwell-seconds=120&script=1", nil)
	req.Header.Set("User-Agent", "Mozilla/5.0 Chrome/39.0 Safari/537.36")
	req.Header.Set("X-Forwarded-For", ip.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("Content-Type %q", resp.Header.Get("Content-Type"))
	}
	var out api.TaskResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Tasks) == 0 {
		t.Fatal("no tasks assigned")
	}
	if out.CollectorURL != "//collector.encore-test.org" {
		t.Fatalf("collector URL %q", out.CollectorURL)
	}
	for _, task := range out.Tasks {
		if task.MeasurementID == "" || task.PatternKey == "" || task.TargetURL == "" || task.Type == "" {
			t.Fatalf("incomplete task %+v", task)
		}
		// Every v2 task is registered for attribution, like a v1 one.
		registered, ok := index.Lookup(task.MeasurementID)
		if !ok {
			t.Fatalf("task %s not registered", task.MeasurementID)
		}
		if registered.PatternKey != task.PatternKey {
			t.Fatalf("registered pattern %q != %q", registered.PatternKey, task.PatternKey)
		}
		// ?script=1: the rendered JavaScript is the v1 view of this task.
		if task.Script == "" {
			t.Fatal("script requested but absent")
		}
		if !strings.Contains(task.Script, task.MeasurementID) {
			t.Fatalf("script does not carry its measurement ID:\n%s", task.Script)
		}
	}
	if s.TasksServed() != 1 {
		t.Fatalf("TasksServed=%d", s.TasksServed())
	}

	// Without ?script the scripts stay home.
	resp2, err := http.Get(srv.URL + api.V2TasksPath)
	if err != nil {
		t.Fatal(err)
	}
	var out2 api.TaskResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	for _, task := range out2.Tasks {
		if task.Script != "" {
			t.Fatal("script present without ?script=1")
		}
	}
}

// TestV2Health checks the coordination server's JSON health counters.
func TestV2Health(t *testing.T) {
	s, _, _ := testCoordinator(t)
	srv := httptest.NewServer(s)
	defer srv.Close()

	// One assignment bumps the counters.
	resp, err := http.Get(srv.URL + api.V2TasksPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + api.V2HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.TasksServed != 1 || health.TasksAssigned == 0 {
		t.Fatalf("health %+v", health)
	}
}

// TestV2TasksDwellBudget checks the dwell-seconds hint reaches the
// scheduler's per-client task budget: a one-second dwell gets the minimum
// single task, a long dwell gets more.
func TestV2TasksDwellBudget(t *testing.T) {
	s, _, _ := testCoordinator(t)
	srv := httptest.NewServer(s)
	defer srv.Close()

	get := func(query string) api.TaskResponse {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+api.V2TasksPath+query, nil)
		req.Header.Set("User-Agent", "Mozilla/5.0 Chrome/39.0 Safari/537.36")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out api.TaskResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	// A one-second dwell caps the budget at the single-task minimum; a long
	// dwell allows more. Single picks are randomized (the focus pool stops
	// at the first repeated target), so compare totals over many requests.
	shortTotal, longTotal := 0, 0
	for i := 0; i < 50; i++ {
		shortTotal += len(get("?dwell-seconds=1").Tasks)
		longTotal += len(get("?dwell-seconds=600").Tasks)
	}
	if shortTotal != 50 {
		t.Fatalf("one-second dwell assigned %d tasks over 50 requests, want exactly the minimum 50", shortTotal)
	}
	if longTotal <= shortTotal {
		t.Fatalf("long dwell assigned %d tasks over 50 requests, short dwell %d; budget hint ignored", longTotal, shortTotal)
	}
}
