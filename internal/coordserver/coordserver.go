// Package coordserver implements Encore's coordination server (§5.3-§5.4):
// the component webmasters' pages reference from their one-line embed
// snippet. When a client requests /task.js the server identifies the
// client's browser family (from the User-Agent) and region (by geolocating
// the address), asks the scheduler for one or more measurement tasks suited
// to that client, registers the tasks so the collection server can attribute
// results, and returns the generated JavaScript.
package coordserver

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"encore/internal/api"
	"encore/internal/collectserver"
	"encore/internal/coordfed"
	"encore/internal/core"
	"encore/internal/geo"
	"encore/internal/results"
	"encore/internal/scheduler"
)

// Server is the coordination server. It implements http.Handler.
type Server struct {
	Scheduler *scheduler.Scheduler
	Tasks     *results.TaskIndex
	Geo       *geo.Registry
	// Snippet options tell generated tasks where to submit results.
	Snippet core.SnippetOptions
	// Now is overridable for tests and simulation. Set it before the server
	// starts handling requests: handlers read it without synchronization.
	Now func() time.Time
	// DefaultDwellSeconds is assumed when the client gives no hint about
	// how long it will stay on the origin page.
	DefaultDwellSeconds float64
	// Obfuscate controls whether served task JavaScript is minified and
	// obfuscated per client, as the paper's coordination server does
	// (Appendix A, §8) to resist DPI-based blocking.
	Obfuscate bool
	// Federation, when set, makes this a replicated coordinator: the
	// router mounts POST /v2/gossip and /v2/healthz reports the federation
	// origin, per-peer gossip health, and status "degraded" while a quorum
	// of the coordinator set is unreachable. Set it before the first
	// request, like every other configuration field.
	Federation *coordfed.Federation

	served uint64

	// covMu guards covBuf, the reusable coverage snapshot buffer behind
	// /coverage.json: dashboards poll the endpoint continuously, and reusing
	// one buffer (entries and maps) keeps steady-state polling from
	// re-allocating the whole snapshot per request.
	covMu  sync.Mutex
	covBuf []scheduler.RegionCoverage

	// router dispatches HTTP requests; built lazily on the first request
	// from the configuration fields above (all of which must be set before
	// traffic starts, per their doc comments).
	routerOnce sync.Once
	router     *api.Router
}

// New creates a coordination server.
func New(sched *scheduler.Scheduler, tasks *results.TaskIndex, g *geo.Registry, snippet core.SnippetOptions) *Server {
	return &Server{
		Scheduler:           sched,
		Tasks:               tasks,
		Geo:                 g,
		Snippet:             snippet,
		Now:                 time.Now,
		DefaultDwellSeconds: 15,
	}
}

// TasksServed reports how many /task.js responses have been generated.
func (s *Server) TasksServed() uint64 { return atomic.LoadUint64(&s.served) }

// TasksAssigned reports how many individual measurement tasks have been
// handed to clients; with several tasks per page view it exceeds TasksServed.
// It delegates to the scheduler's atomic assignment counter, so monitoring
// reads never contend with scheduling.
func (s *Server) TasksAssigned() uint64 { return uint64(s.Scheduler.TotalAssignments()) }

// ServeHTTP dispatches through the versioned API router: the v1 surface
// (/task.js, /frame.html, /healthz, /coverage.json, plus /v1/ aliases)
// answered exactly as the seed server did, and the v2 JSON surface
// (/v2/tasks, /v2/healthz). The router is built from the configuration
// fields on the first request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.routerOnce.Do(func() { s.router = s.buildRouter() })
	s.router.ServeHTTP(w, r)
}

// buildRouter mounts the v1 and v2 endpoints. The coordination server always
// answers cross-origin (the embed snippet loads task.js from arbitrary
// origin pages), so CORS is unconditionally on.
func (s *Server) buildRouter() *api.Router {
	rt := api.NewRouter()
	rt.EnableCORS()
	rt.HandleFunc(http.MethodGet, api.V1TaskJSPath, s.handleTaskJS)
	rt.HandleFunc(http.MethodGet, api.V1FramePath, s.handleFrame)
	rt.HandleFunc(http.MethodGet, api.V1HealthPath, s.handleHealth)
	rt.HandleFunc(http.MethodGet, api.V1CoveragePath, s.handleCoverage)
	rt.Alias("/v1"+api.V1TaskJSPath, api.V1TaskJSPath)
	rt.Alias("/v1"+api.V1FramePath, api.V1FramePath)
	rt.Alias("/v1"+api.V1HealthPath, api.V1HealthPath)
	rt.Alias("/v1"+api.V1CoveragePath, api.V1CoveragePath)
	rt.HandleFunc(http.MethodGet, api.V2TasksPath, s.handleTasksV2)
	rt.HandleFunc(http.MethodGet, api.V2HealthPath, s.handleHealthV2)
	if s.Federation != nil {
		rt.HandleFunc(http.MethodPost, api.V2GossipPath, s.Federation.Handler())
	}
	return rt
}

// handleHealth answers the v1 plain-text health check.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok: %d task responses served, %d tasks assigned\n", s.TasksServed(), s.TasksAssigned())
}

// handleHealthV2 answers GET /v2/healthz with structured health. A federated
// coordinator adds its origin and per-peer gossip state, and reports
// "degraded" while a quorum of the coordinator set is unreachable — it keeps
// assigning tasks from its last merged coverage view the whole time.
func (s *Server) handleHealthV2(w http.ResponseWriter, _ *http.Request) {
	resp := api.HealthResponse{
		Status:        api.StatusOK,
		TasksServed:   s.TasksServed(),
		TasksAssigned: s.TasksAssigned(),
	}
	if f := s.Federation; f != nil {
		resp.Origin = f.Origin()
		resp.Peers = f.PeerHealth(s.Now())
		if f.Degraded() {
			resp.Status = api.StatusDegraded
		}
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

// handleTasksV2 answers GET /v2/tasks with the structured form of the same
// assignment /task.js renders as JavaScript: the scheduler picks tasks for
// the requesting client (browser family from the User-Agent, region by
// geolocation, dwell from the dwell-seconds parameter), the task index
// registers them for attribution, and the response carries one Task object
// per assignment. With ?script=1 each task also carries its rendered v1
// JavaScript, pinning down that the beacon script is one rendering of this
// response.
func (s *Server) handleTasksV2(w http.ResponseWriter, r *http.Request) {
	req := api.ParseTaskRequest(r)
	client := s.ClientFromRequest(r)
	if req.DwellSeconds > 0 {
		client.ExpectedDwellSeconds = req.DwellSeconds
	}
	tasks := s.AssignAndRegister(client, s.Now())
	resp := api.TaskResponse{
		Tasks:        make([]api.Task, 0, len(tasks)),
		CollectorURL: s.Snippet.CollectorURL,
	}
	for _, t := range tasks {
		out := api.Task{
			MeasurementID:  t.MeasurementID,
			Type:           t.Type.String(),
			TargetURL:      t.TargetURL,
			CachedImageURL: t.CachedImageURL,
			PatternKey:     t.PatternKey,
			TimeoutMillis:  t.TimeoutMillis,
			Control:        t.Control,
		}
		if req.IncludeScript {
			out.Script = s.renderTask(t)
		}
		resp.Tasks = append(resp.Tasks, out)
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

// handleCoverage serves the scheduler's per-region coverage snapshot for
// monitoring dashboards: how many assignments each pattern has received from
// each region, plus the min/max balance the per-region least-covered index
// maintains. Snapshotting locks each region shard only long enough to copy
// its counters, so polling this endpoint never stalls assignment; the
// snapshot buffer is reused across requests (serialized by covMu) so
// steady-state polling does not re-allocate it.
func (s *Server) handleCoverage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.covMu.Lock()
	defer s.covMu.Unlock()
	s.covBuf = s.Scheduler.CoverageSnapshotInto(s.covBuf)
	payload := struct {
		TasksServed   uint64                     `json:"tasksServed"`
		TasksAssigned uint64                     `json:"tasksAssigned"`
		Focus         string                     `json:"focus"`
		Regions       []scheduler.RegionCoverage `json:"regions"`
	}{
		TasksServed:   s.TasksServed(),
		TasksAssigned: s.TasksAssigned(),
		Focus:         s.Scheduler.FocusPattern(s.Now()),
		Regions:       s.covBuf,
	}
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ClientFromRequest derives the scheduling view of a client from its HTTP
// request.
func (s *Server) ClientFromRequest(r *http.Request) scheduler.ClientInfo {
	info := scheduler.ClientInfo{
		Browser:              collectserver.ParseBrowserFamily(r.UserAgent()),
		ExpectedDwellSeconds: s.DefaultDwellSeconds,
	}
	ip := remoteIP(r)
	if s.Geo != nil && ip != "" {
		if code, err := s.Geo.LookupString(ip); err == nil {
			info.Region = code
		}
	}
	return info
}

// AssignAndRegister asks the scheduler for tasks for the client and registers
// them in the task index. It is the programmatic entry point used by the
// in-process client simulator; the HTTP handlers delegate to it.
func (s *Server) AssignAndRegister(client scheduler.ClientInfo, now time.Time) []core.Task {
	tasks := s.Scheduler.Assign(client, now)
	for _, t := range tasks {
		s.Tasks.Register(t)
	}
	if len(tasks) > 0 {
		atomic.AddUint64(&s.served, 1)
	}
	return tasks
}

// handleTaskJS serves the measurement JavaScript for this client.
func (s *Server) handleTaskJS(w http.ResponseWriter, r *http.Request) {
	client := s.ClientFromRequest(r)
	tasks := s.AssignAndRegister(client, s.Now())
	w.Header().Set("Content-Type", "application/javascript")
	w.Header().Set("Cache-Control", "no-store")
	if len(tasks) == 0 {
		fmt.Fprintln(w, "// encore: no measurement tasks available")
		return
	}
	if !s.Obfuscate {
		fmt.Fprintln(w, "// encore measurement tasks")
	}
	for _, t := range tasks {
		fmt.Fprintln(w, s.renderTask(t))
	}
}

// renderTask generates (and, if configured, obfuscates) the JavaScript for
// one task.
func (s *Server) renderTask(t core.Task) string {
	js := core.GenerateTaskScript(t, s.Snippet)
	if s.Obfuscate {
		return core.ObfuscateScript(js, t.MeasurementID)
	}
	return js
}

// InlineTaskJS generates ready-to-inline task JavaScript for the client
// behind the request. Origin servers operating in webmaster-proxy mode (§8)
// call this so the measurement task travels inside the origin's own page and
// the client never contacts the coordination server directly.
func (s *Server) InlineTaskJS(r *http.Request) string {
	client := s.ClientFromRequest(r)
	tasks := s.AssignAndRegister(client, s.Now())
	if len(tasks) == 0 {
		return "// encore: no measurement tasks available\n"
	}
	var b strings.Builder
	for _, t := range tasks {
		b.WriteString(s.renderTask(t))
		b.WriteString("\n")
	}
	return b.String()
}

// handleFrame serves a minimal HTML document that loads /task.js, for
// webmasters who prefer the iframe embed.
func (s *Server) handleFrame(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>encore</title></head><body>%s</body></html>\n",
		core.EmbedSnippet(s.Snippet))
}

func remoteIP(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		parts := strings.Split(xff, ",")
		return strings.TrimSpace(parts[0])
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
