package coordserver

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"encore/internal/core"
	"encore/internal/geo"
	"encore/internal/pipeline"
	"encore/internal/results"
	"encore/internal/scheduler"
)

func testCoordinator(t *testing.T) (*Server, *results.TaskIndex, *geo.Registry) {
	t.Helper()
	ts := pipeline.NewTaskSet()
	for _, d := range []string{"youtube.com", "twitter.com"} {
		ts.Add(pipeline.Candidate{
			PatternKey: "domain:" + d,
			Type:       core.TaskImage,
			TargetURL:  "http://" + d + "/favicon.ico",
			Strict:     true,
		})
		ts.Add(pipeline.Candidate{
			PatternKey: "domain:" + d,
			Type:       core.TaskScript,
			TargetURL:  "http://" + d + "/favicon.ico",
			Strict:     true,
		})
	}
	sched := scheduler.New(ts, scheduler.DefaultConfig())
	index := results.NewTaskIndex()
	g := geo.NewRegistry(2)
	snippet := core.SnippetOptions{
		CoordinatorURL: "//coordinator.encore-test.org",
		CollectorURL:   "//collector.encore-test.org",
	}
	s := New(sched, index, g, snippet)
	s.Now = func() time.Time { return time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC) }
	return s, index, g
}

func TestServeTaskJS(t *testing.T) {
	s, index, g := testCoordinator(t)
	srv := httptest.NewServer(s)
	defer srv.Close()

	ip, _ := g.RandomIP("CN")
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/task.js", nil)
	req.Header.Set("User-Agent", "Mozilla/5.0 Chrome/39.0 Safari/537.36")
	req.Header.Set("X-Forwarded-For", ip.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	js := string(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "javascript") {
		t.Fatalf("content type=%q", ct)
	}
	if !strings.Contains(js, "submitToCollector") || !strings.Contains(js, "collector.encore-test.org") {
		t.Fatalf("served JS does not look like a measurement task:\n%s", js)
	}
	if index.Len() == 0 {
		t.Fatal("served tasks were not registered in the task index")
	}
	if s.TasksServed() == 0 {
		t.Fatal("TasksServed not incremented")
	}
	// Verify the registered task is retrievable and valid.
	found := false
	for _, line := range strings.Split(js, "\n") {
		if strings.Contains(line, "M.measurementId = ") {
			id := strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(line), `M.measurementId = "`), `";`)
			task, ok := index.Lookup(id)
			if !ok {
				t.Fatalf("measurement ID %q in JS but not registered", id)
			}
			if err := task.Validate(); err != nil {
				t.Fatalf("registered task invalid: %v", err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no measurement ID found in served JS")
	}
}

func TestServeFrameAndHealthz(t *testing.T) {
	s, _, _ := testCoordinator(t)
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/frame.html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "task.js") {
		t.Fatalf("frame does not reference task.js:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status=%d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status=%d", resp.StatusCode)
	}
}

func TestClientFromRequest(t *testing.T) {
	s, _, g := testCoordinator(t)
	ip, _ := g.RandomIP("BR")
	req := httptest.NewRequest(http.MethodGet, "http://coordinator.example.org/task.js", nil)
	req.Header.Set("User-Agent", "Mozilla/5.0 Firefox/35.0")
	req.RemoteAddr = ip.String() + ":51544"
	info := s.ClientFromRequest(req)
	if info.Region != "BR" || info.Browser != core.BrowserFirefox {
		t.Fatalf("client info wrong: %+v", info)
	}
	if info.ExpectedDwellSeconds <= 0 {
		t.Fatal("dwell default missing")
	}
}

func TestAssignAndRegisterDirect(t *testing.T) {
	s, index, _ := testCoordinator(t)
	tasks := s.AssignAndRegister(scheduler.ClientInfo{Region: "PK", Browser: core.BrowserFirefox, ExpectedDwellSeconds: 5}, time.Unix(0, 0))
	if len(tasks) == 0 {
		t.Fatal("no tasks assigned")
	}
	for _, task := range tasks {
		if task.Type == core.TaskScript {
			t.Fatal("Firefox assigned a script task")
		}
		if _, ok := index.Lookup(task.MeasurementID); !ok {
			t.Fatal("assigned task not registered")
		}
	}
}

func TestObfuscatedTaskJS(t *testing.T) {
	s, index, g := testCoordinator(t)
	s.Obfuscate = true
	srv := httptest.NewServer(s)
	defer srv.Close()
	ip, _ := g.RandomIP("CN")
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/task.js", nil)
	req.Header.Set("User-Agent", "Mozilla/5.0 Chrome/39.0 Safari/537.36")
	req.Header.Set("X-Forwarded-For", ip.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	js := string(body)
	if strings.Contains(js, "var M = Object()") || strings.Contains(js, "// encore") {
		t.Fatalf("obfuscated response still carries the plain signature:\n%s", js)
	}
	// The protocol still works: the collector endpoint and a registered
	// measurement ID are present.
	if !strings.Contains(js, "collector.encore-test.org") || !strings.Contains(js, "cmh-result") {
		t.Fatal("obfuscated task lost the submission protocol")
	}
	if index.Len() == 0 {
		t.Fatal("no tasks registered")
	}
}

func TestInlineTaskJS(t *testing.T) {
	s, index, g := testCoordinator(t)
	ip, _ := g.RandomIP("IR")
	req := httptest.NewRequest(http.MethodGet, "http://origin.example.org/", nil)
	req.Header.Set("User-Agent", "Mozilla/5.0 Chrome/39.0 Safari/537.36")
	req.RemoteAddr = ip.String() + ":40000"
	js := s.InlineTaskJS(req)
	if !strings.Contains(js, "submitToCollector") {
		t.Fatalf("inline JS does not look like a task:\n%s", js)
	}
	if index.Len() == 0 {
		t.Fatal("inline tasks were not registered")
	}
	// Empty scheduler yields a harmless comment.
	empty := New(scheduler.New(pipeline.NewTaskSet(), scheduler.DefaultConfig()), results.NewTaskIndex(), g,
		core.SnippetOptions{CoordinatorURL: "//c", CollectorURL: "//d"})
	if js := empty.InlineTaskJS(req); !strings.Contains(js, "no measurement tasks") {
		t.Fatalf("empty inline JS=%q", js)
	}
}

func TestTaskJSWithEmptyScheduler(t *testing.T) {
	sched := scheduler.New(pipeline.NewTaskSet(), scheduler.DefaultConfig())
	s := New(sched, results.NewTaskIndex(), geo.NewRegistry(1), core.SnippetOptions{CoordinatorURL: "//c", CollectorURL: "//d"})
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/task.js")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "no measurement tasks") {
		t.Fatalf("empty scheduler should serve a harmless comment, got %d %q", resp.StatusCode, body)
	}
}

// TestCoverageEndpoint drives a few assignments and checks /coverage.json
// reports them per region with the focus pattern and counters.
func TestCoverageEndpoint(t *testing.T) {
	s, _, g := testCoordinator(t)
	srv := httptest.NewServer(s)
	defer srv.Close()

	ip, _ := g.RandomIP("PK")
	for i := 0; i < 5; i++ {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/task.js", nil)
		req.Header.Set("User-Agent", "Mozilla/5.0 Chrome/39.0 Safari/537.36")
		req.Header.Set("X-Forwarded-For", ip.String())
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/coverage.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type=%q", ct)
	}
	var payload struct {
		TasksServed   uint64 `json:"tasksServed"`
		TasksAssigned uint64 `json:"tasksAssigned"`
		Focus         string `json:"focus"`
		Regions       []struct {
			Region   string         `json:"region"`
			Assigned map[string]int `json:"assigned"`
			Min      int            `json:"min"`
			Max      int            `json:"max"`
		} `json:"regions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.TasksServed != 5 {
		t.Fatalf("tasksServed=%d, want 5", payload.TasksServed)
	}
	if payload.TasksAssigned == 0 || payload.Focus == "" {
		t.Fatalf("missing assigned/focus: %+v", payload)
	}
	if len(payload.Regions) != 1 || payload.Regions[0].Region != "PK" {
		t.Fatalf("regions=%+v, want exactly PK", payload.Regions)
	}
	sum := 0
	for _, n := range payload.Regions[0].Assigned {
		sum += n
	}
	if sum != int(payload.TasksAssigned) {
		t.Fatalf("region counts sum to %d, tasksAssigned=%d", sum, payload.TasksAssigned)
	}
	if payload.Regions[0].Max < payload.Regions[0].Min {
		t.Fatalf("max < min in %+v", payload.Regions[0])
	}
}
