package har

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleLog() *Log {
	l := NewLog()
	start := time.Date(2014, 2, 26, 12, 0, 0, 0, time.UTC)
	pid := l.AddPage("http://example.com/", start, 850)
	l.AddEntry(Entry{
		Pageref: pid,
		Time:    120,
		Request: Request{Method: "GET", URL: "http://example.com/", HTTPVersion: "HTTP/1.1"},
		Response: Response{
			Status: 200, StatusText: "OK", HTTPVersion: "HTTP/1.1",
			Headers: []Header{{Name: "Content-Type", Value: "text/html"}},
			Content: Content{Size: 18000, MimeType: "text/html"},
		},
		Timings: Timings{DNS: 10, Connect: 30, Send: 1, Wait: 50, Receive: 29},
	})
	l.AddEntry(Entry{
		Pageref: pid,
		Time:    40,
		Request: Request{Method: "GET", URL: "http://example.com/favicon.ico", HTTPVersion: "HTTP/1.1"},
		Response: Response{
			Status: 200, StatusText: "OK", HTTPVersion: "HTTP/1.1",
			Headers: []Header{
				{Name: "Content-Type", Value: "image/x-icon"},
				{Name: "Cache-Control", Value: "public, max-age=86400"},
			},
			Content: Content{Size: 900, MimeType: "image/x-icon"},
		},
	})
	l.AddEntry(Entry{
		Pageref: pid,
		Time:    60,
		Request: Request{Method: "GET", URL: "http://cdn.example.com/site.css", HTTPVersion: "HTTP/1.1"},
		Response: Response{
			Status: 200, StatusText: "OK", HTTPVersion: "HTTP/1.1",
			Headers: []Header{
				{Name: "Content-Type", Value: "text/css"},
				{Name: "Cache-Control", Value: "no-store"},
			},
			Content: Content{Size: 4000, MimeType: "text/css"},
		},
	})
	l.AddEntry(Entry{
		Pageref: pid,
		Time:    70,
		Request: Request{Method: "GET", URL: "http://cdn.example.com/app.js", HTTPVersion: "HTTP/1.1"},
		Response: Response{
			Status: 200, StatusText: "OK", HTTPVersion: "HTTP/1.1",
			Headers: []Header{
				{Name: "Content-Type", Value: "application/javascript"},
				{Name: "X-Content-Type-Options", Value: "nosniff"},
				{Name: "Expires", Value: "Thu, 01 Jan 2026 00:00:00 GMT"},
			},
			Content: Content{Size: 30000, MimeType: "application/javascript"},
		},
	})
	return l
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"log"`) {
		t.Fatal("encoded HAR missing log framing")
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != Version {
		t.Fatalf("version=%q", got.Version)
	}
	if len(got.Entries) != len(l.Entries) || len(got.Pages) != len(l.Pages) {
		t.Fatalf("round trip lost records: %d/%d entries, %d/%d pages",
			len(got.Entries), len(l.Entries), len(got.Pages), len(l.Pages))
	}
	if got.Entries[1].Request.URL != "http://example.com/favicon.ico" {
		t.Fatalf("entry URL lost: %q", got.Entries[1].Request.URL)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error decoding garbage")
	}
}

func TestValidate(t *testing.T) {
	l := sampleLog()
	if err := l.Validate(); err != nil {
		t.Fatalf("sample log invalid: %v", err)
	}
	bad := NewLog()
	bad.AddEntry(Entry{Pageref: "missing", Request: Request{URL: "http://x.com/"}})
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for dangling pageref")
	}
	bad2 := NewLog()
	bad2.AddEntry(Entry{Request: Request{URL: ""}})
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected error for missing URL")
	}
	bad3 := &Log{}
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected error for missing version")
	}
	dup := NewLog()
	dup.Pages = append(dup.Pages, Page{ID: "p"}, Page{ID: "p"})
	if err := dup.Validate(); err == nil {
		t.Fatal("expected error for duplicate page ids")
	}
}

func TestHeaderValue(t *testing.T) {
	hs := []Header{{Name: "Content-Type", Value: "text/html"}}
	if HeaderValue(hs, "content-type") != "text/html" {
		t.Fatal("header lookup should be case-insensitive")
	}
	if HeaderValue(hs, "Missing") != "" {
		t.Fatal("missing header should return empty string")
	}
}

func TestEntryClassification(t *testing.T) {
	l := sampleLog()
	entries := l.Entries
	if !entries[0].IsHTML() || entries[0].IsImage() {
		t.Fatal("entry 0 should be HTML")
	}
	if !entries[1].IsImage() {
		t.Fatal("entry 1 should be an image")
	}
	if !entries[2].IsStylesheet() {
		t.Fatal("entry 2 should be a stylesheet")
	}
	if !entries[3].IsScript() {
		t.Fatal("entry 3 should be a script")
	}
}

func TestCacheability(t *testing.T) {
	l := sampleLog()
	if !l.Entries[1].IsCacheable() {
		t.Fatal("favicon with max-age should be cacheable")
	}
	if l.Entries[2].IsCacheable() {
		t.Fatal("no-store stylesheet should not be cacheable")
	}
	if !l.Entries[3].IsCacheable() {
		t.Fatal("entry with Expires should be cacheable")
	}
	noCC := Entry{Response: Response{Headers: nil}}
	if noCC.IsCacheable() {
		t.Fatal("entry without caching headers should not be cacheable")
	}
	maxAge0 := Entry{Response: Response{Headers: []Header{{Name: "Cache-Control", Value: "max-age=0"}}}}
	if maxAge0.IsCacheable() {
		t.Fatal("max-age=0 should not be cacheable")
	}
}

func TestNoSniff(t *testing.T) {
	l := sampleLog()
	if !l.Entries[3].NoSniff() {
		t.Fatal("script entry carries nosniff")
	}
	if l.Entries[0].NoSniff() {
		t.Fatal("HTML entry does not carry nosniff")
	}
}

func TestTimingsTotal(t *testing.T) {
	tm := Timings{Blocked: -1, DNS: 10, Connect: 20, Send: 1, Wait: 5, Receive: 4}
	if got := tm.Total(); got != 40 {
		t.Fatalf("Total=%v, want 40 (negative phases ignored)", got)
	}
}

func TestAnalyzePage(t *testing.T) {
	l := sampleLog()
	ps := l.AnalyzePage("page_1")
	if ps.Objects != 4 {
		t.Fatalf("Objects=%d", ps.Objects)
	}
	if ps.TotalBytes != 18000+900+4000+30000 {
		t.Fatalf("TotalBytes=%d", ps.TotalBytes)
	}
	if ps.Images != 1 || ps.SmallImages1KB != 1 || ps.SmallImages5KB != 1 || ps.CacheableImages != 1 {
		t.Fatalf("image stats wrong: %+v", ps)
	}
	if ps.Stylesheets != 1 || ps.Scripts != 1 {
		t.Fatalf("sheet/script stats wrong: %+v", ps)
	}
	if ps.HasLargeMedia {
		t.Fatal("sample page has no large media")
	}
	if ps.URL != "http://example.com/" {
		t.Fatalf("URL=%q", ps.URL)
	}
}

func TestAnalyzeAll(t *testing.T) {
	l := sampleLog()
	all := l.AnalyzeAll()
	if len(all) != 1 || all[0].PageID != "page_1" {
		t.Fatalf("AnalyzeAll=%+v", all)
	}
}

func TestLargeMediaDetection(t *testing.T) {
	l := NewLog()
	pid := l.AddPage("http://video.example.com/", time.Now(), 100)
	l.AddEntry(Entry{
		Pageref: pid,
		Request: Request{Method: "GET", URL: "http://video.example.com/movie.mp4"},
		Response: Response{Status: 200,
			Content: Content{Size: 5 << 20, MimeType: "video/mp4"}},
	})
	if !l.AnalyzePage(pid).HasLargeMedia {
		t.Fatal("video entry should set HasLargeMedia")
	}
}

func TestEntriesForPageFiltersOthers(t *testing.T) {
	l := sampleLog()
	pid2 := l.AddPage("http://other.com/", time.Now(), 50)
	l.AddEntry(Entry{Pageref: pid2, Request: Request{Method: "GET", URL: "http://other.com/"},
		Response: Response{Status: 200, Content: Content{Size: 10, MimeType: "text/html"}}})
	if n := len(l.EntriesForPage("page_1")); n != 4 {
		t.Fatalf("page_1 has %d entries, want 4", n)
	}
	if n := len(l.EntriesForPage(pid2)); n != 1 {
		t.Fatalf("page_2 has %d entries, want 1", n)
	}
}
