// Package har implements the subset of the HTTP Archive (HAR) 1.2 format
// that Encore's task-generation pipeline consumes (§5.2). The Target Fetcher
// renders each candidate URL in a browser and records a HAR file documenting
// every resource the page loaded, its timings, and its HTTP headers; the Task
// Generator then inspects those HAR files to decide which measurement task
// types can test each resource.
package har

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// Version is the HAR specification version this package produces.
const Version = "1.2"

// Log is the top-level HAR object.
type Log struct {
	Version string  `json:"version"`
	Creator Creator `json:"creator"`
	Pages   []Page  `json:"pages"`
	Entries []Entry `json:"entries"`
}

// Creator identifies the software that produced the archive.
type Creator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// Page records one rendered page.
type Page struct {
	StartedDateTime time.Time   `json:"startedDateTime"`
	ID              string      `json:"id"`
	Title           string      `json:"title"`
	PageTimings     PageTimings `json:"pageTimings"`
}

// PageTimings records page-level load milestones in milliseconds.
type PageTimings struct {
	OnContentLoad float64 `json:"onContentLoad"`
	OnLoad        float64 `json:"onLoad"`
}

// Entry records one request/response pair observed while rendering a page.
type Entry struct {
	Pageref         string    `json:"pageref"`
	StartedDateTime time.Time `json:"startedDateTime"`
	Time            float64   `json:"time"`
	Request         Request   `json:"request"`
	Response        Response  `json:"response"`
	Timings         Timings   `json:"timings"`
}

// Request is the issued HTTP request.
type Request struct {
	Method      string   `json:"method"`
	URL         string   `json:"url"`
	HTTPVersion string   `json:"httpVersion"`
	Headers     []Header `json:"headers"`
	HeadersSize int      `json:"headersSize"`
	BodySize    int      `json:"bodySize"`
}

// Response is the received HTTP response.
type Response struct {
	Status      int      `json:"status"`
	StatusText  string   `json:"statusText"`
	HTTPVersion string   `json:"httpVersion"`
	Headers     []Header `json:"headers"`
	Content     Content  `json:"content"`
	HeadersSize int      `json:"headersSize"`
	BodySize    int      `json:"bodySize"`
}

// Content describes the response body.
type Content struct {
	Size     int    `json:"size"`
	MimeType string `json:"mimeType"`
}

// Header is a single HTTP header.
type Header struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Timings breaks an entry's total time into phases (milliseconds).
type Timings struct {
	Blocked float64 `json:"blocked"`
	DNS     float64 `json:"dns"`
	Connect float64 `json:"connect"`
	Send    float64 `json:"send"`
	Wait    float64 `json:"wait"`
	Receive float64 `json:"receive"`
}

// Total returns the sum of the timing phases, ignoring negative (absent)
// values as the HAR specification requires.
func (t Timings) Total() float64 {
	sum := 0.0
	for _, v := range []float64{t.Blocked, t.DNS, t.Connect, t.Send, t.Wait, t.Receive} {
		if v > 0 {
			sum += v
		}
	}
	return sum
}

// ErrInvalidLog is returned when decoding or validating a malformed archive.
var ErrInvalidLog = errors.New("har: invalid log")

// File wraps a Log for JSON encoding, matching the {"log": {...}} framing of
// .har files on disk.
type File struct {
	Log Log `json:"log"`
}

// NewLog returns an empty log attributed to the Encore reproduction.
func NewLog() *Log {
	return &Log{
		Version: Version,
		Creator: Creator{Name: "encore-target-fetcher", Version: "1.0"},
	}
}

// AddPage appends a page record and returns its identifier.
func (l *Log) AddPage(url string, started time.Time, onLoadMillis float64) string {
	id := fmt.Sprintf("page_%d", len(l.Pages)+1)
	l.Pages = append(l.Pages, Page{
		StartedDateTime: started,
		ID:              id,
		Title:           url,
		PageTimings:     PageTimings{OnContentLoad: onLoadMillis * 0.8, OnLoad: onLoadMillis},
	})
	return id
}

// AddEntry appends an entry associated with the given page id.
func (l *Log) AddEntry(e Entry) {
	l.Entries = append(l.Entries, e)
}

// Validate checks structural invariants: a version, at least one page for any
// entry's pageref, and non-negative sizes.
func (l *Log) Validate() error {
	if l.Version == "" {
		return fmt.Errorf("%w: missing version", ErrInvalidLog)
	}
	pageIDs := make(map[string]bool, len(l.Pages))
	for _, p := range l.Pages {
		if p.ID == "" {
			return fmt.Errorf("%w: page with empty id", ErrInvalidLog)
		}
		if pageIDs[p.ID] {
			return fmt.Errorf("%w: duplicate page id %q", ErrInvalidLog, p.ID)
		}
		pageIDs[p.ID] = true
	}
	for i, e := range l.Entries {
		if e.Pageref != "" && !pageIDs[e.Pageref] {
			return fmt.Errorf("%w: entry %d references unknown page %q", ErrInvalidLog, i, e.Pageref)
		}
		if e.Request.URL == "" {
			return fmt.Errorf("%w: entry %d missing request URL", ErrInvalidLog, i)
		}
		if e.Response.Content.Size < 0 {
			return fmt.Errorf("%w: entry %d has negative content size", ErrInvalidLog, i)
		}
	}
	return nil
}

// Encode writes the log as pretty-printed JSON with the standard file
// framing.
func (l *Log) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(File{Log: *l})
}

// Decode reads a HAR file from r and validates it.
func Decode(r io.Reader) (*Log, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidLog, err)
	}
	if err := f.Log.Validate(); err != nil {
		return nil, err
	}
	return &f.Log, nil
}

// Header lookup helpers.

// HeaderValue returns the first value of the named header (case-insensitive),
// or "" if absent.
func HeaderValue(headers []Header, name string) string {
	for _, h := range headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value
		}
	}
	return ""
}

// EntriesForPage returns the entries whose pageref matches id, preserving
// order.
func (l *Log) EntriesForPage(id string) []Entry {
	var out []Entry
	for _, e := range l.Entries {
		if e.Pageref == id {
			out = append(out, e)
		}
	}
	return out
}

// Analysis helpers used by the Task Generator (§5.2) and the feasibility
// study (§6.1).

// IsImage reports whether the entry's response is an image.
func (e Entry) IsImage() bool {
	return strings.HasPrefix(strings.ToLower(e.Response.Content.MimeType), "image/")
}

// IsStylesheet reports whether the entry's response is a CSS style sheet.
func (e Entry) IsStylesheet() bool {
	return strings.Contains(strings.ToLower(e.Response.Content.MimeType), "text/css")
}

// IsScript reports whether the entry's response is JavaScript.
func (e Entry) IsScript() bool {
	mt := strings.ToLower(e.Response.Content.MimeType)
	return strings.Contains(mt, "javascript") || strings.Contains(mt, "ecmascript")
}

// IsHTML reports whether the entry's response is an HTML document.
func (e Entry) IsHTML() bool {
	return strings.Contains(strings.ToLower(e.Response.Content.MimeType), "text/html")
}

// IsCacheable reports whether the response may be stored and reused by a
// browser cache: it requires a cache-friendly Cache-Control (or an Expires
// header) and the absence of no-store/no-cache directives.
func (e Entry) IsCacheable() bool {
	cc := strings.ToLower(HeaderValue(e.Response.Headers, "Cache-Control"))
	if strings.Contains(cc, "no-store") || strings.Contains(cc, "no-cache") || strings.Contains(cc, "private") {
		return false
	}
	if strings.Contains(cc, "max-age=0") {
		return false
	}
	if strings.Contains(cc, "max-age") || strings.Contains(cc, "public") || strings.Contains(cc, "immutable") {
		return true
	}
	return HeaderValue(e.Response.Headers, "Expires") != ""
}

// NoSniff reports whether the response carries X-Content-Type-Options:
// nosniff, which governs whether Chrome's script-tag mechanism is safe to use
// against the resource (§4.3.2).
func (e Entry) NoSniff() bool {
	return strings.EqualFold(HeaderValue(e.Response.Headers, "X-Content-Type-Options"), "nosniff")
}

// PageStats summarizes one page of a HAR log for the feasibility analysis.
type PageStats struct {
	PageID string
	URL    string
	// TotalBytes is the sum of all object sizes the page loads — the
	// paper's "page size" metric in Figure 5.
	TotalBytes int
	// Objects is the number of entries the page loads.
	Objects int
	// Images counts image entries; SmallImages1KB / SmallImages5KB count
	// images at most 1 KB / 5 KB (Figure 4 thresholds).
	Images          int
	SmallImages1KB  int
	SmallImages5KB  int
	CacheableImages int
	Stylesheets     int
	Scripts         int
	// HasLargeMedia reports whether the page loads flash, video, or audio
	// objects — pages the Task Generator must exclude from iframe tasks.
	HasLargeMedia bool
}

// AnalyzePage computes PageStats for the page with the given id.
func (l *Log) AnalyzePage(id string) PageStats {
	stats := PageStats{PageID: id}
	for _, p := range l.Pages {
		if p.ID == id {
			stats.URL = p.Title
			break
		}
	}
	for _, e := range l.EntriesForPage(id) {
		stats.Objects++
		stats.TotalBytes += e.Response.Content.Size
		mt := strings.ToLower(e.Response.Content.MimeType)
		switch {
		case e.IsImage():
			stats.Images++
			if e.Response.Content.Size <= 1024 {
				stats.SmallImages1KB++
			}
			if e.Response.Content.Size <= 5*1024 {
				stats.SmallImages5KB++
			}
			if e.IsCacheable() {
				stats.CacheableImages++
			}
		case e.IsStylesheet():
			stats.Stylesheets++
		case e.IsScript():
			stats.Scripts++
		}
		if strings.Contains(mt, "flash") || strings.Contains(mt, "video") ||
			strings.Contains(mt, "audio") || strings.Contains(mt, "shockwave") {
			stats.HasLargeMedia = true
		}
	}
	return stats
}

// AnalyzeAll returns PageStats for every page in the log, in page order.
func (l *Log) AnalyzeAll() []PageStats {
	out := make([]PageStats, 0, len(l.Pages))
	for _, p := range l.Pages {
		out = append(out, l.AnalyzePage(p.ID))
	}
	return out
}
