package coordfed_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"encore/internal/api"
	"encore/internal/coordfed"
	"encore/internal/coordserver"
	"encore/internal/core"
	"encore/internal/geo"
	"encore/internal/pipeline"
	"encore/internal/results"
	"encore/internal/scheduler"
)

// This file holds the ROADMAP-named replicated-control-plane test: K=3
// coordinators with real gossip loops over real listeners serve disjoint
// client populations, one coordinator is killed and restarted mid-campaign
// (rejoining under a fresh origin per the incarnation rule), and the cluster
// must converge to a single global coverage view whose per-region balance
// spread is at most one, with a focus schedule bit-identical to a
// single-coordinator baseline run from the same anchor.

const fedWindow = 1000 * time.Hour

func integrationTaskSet() *pipeline.TaskSet {
	ts := pipeline.NewTaskSet()
	ts.Add(pipeline.Candidate{PatternKey: "domain:aaa-script-only.org", Type: core.TaskScript,
		TargetURL: "http://aaa-script-only.org/app.js", Strict: true})
	for i := 1; i < 6; i++ {
		d := fmt.Sprintf("balance%02d.example.org", i)
		ts.Add(pipeline.Candidate{PatternKey: "domain:" + d, Type: core.TaskImage,
			TargetURL: "http://" + d + "/favicon.ico", Strict: true})
	}
	return ts
}

func newIntegrationScheduler(seed uint64) *scheduler.Scheduler {
	cfg := scheduler.DefaultConfig()
	cfg.QuorumWindow = fedWindow
	cfg.Seed = seed
	return scheduler.New(integrationTaskSet(), cfg)
}

// fedNode is one live coordinator: full coordserver on a real listener with
// the federation's gossip loop running.
type fedNode struct {
	origin string
	addr   string
	sched  *scheduler.Scheduler
	fed    *coordfed.Federation
	hs     *http.Server
}

func startNode(t *testing.T, ln net.Listener, origin string, peers []string, seed uint64) *fedNode {
	t.Helper()
	sched := newIntegrationScheduler(seed)
	coord := coordserver.New(sched, results.NewTaskIndex(), geo.NewRegistry(1), core.SnippetOptions{})
	fed, err := coordfed.New(coordfed.Config{
		Origin:     origin,
		Scheduler:  sched,
		Peers:      peers,
		Interval:   20 * time.Millisecond,
		MaxBackoff: 500 * time.Millisecond,
		Timeout:    2 * time.Second,
		Seed:       seed,
	})
	if err != nil {
		t.Fatalf("coordfed.New(%s): %v", origin, err)
	}
	coord.Federation = fed
	n := &fedNode{origin: origin, addr: ln.Addr().String(), sched: sched, fed: fed,
		hs: &http.Server{Handler: coord}}
	go n.hs.Serve(ln)
	fed.Start()
	return n
}

func (n *fedNode) stop() {
	n.fed.Close()
	n.hs.Close()
}

// relisten rebinds a just-released loopback address; the retry loop absorbs
// the OS briefly holding the port after close.
func relisten(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

var fedRegions = []geo.CountryCode{"US", "PK", "CN"}

func fedClient(region geo.CountryCode) scheduler.ClientInfo {
	return scheduler.ClientInfo{Region: region, Browser: core.BrowserFirefox, ExpectedDwellSeconds: 5}
}

// globalTotals sums a node's global view over every pattern and test region.
func globalTotals(s *scheduler.Scheduler) int {
	total := 0
	for _, key := range s.PatternKeys() {
		for _, region := range fedRegions {
			total += s.GlobalAssignments(key, region)
		}
	}
	return total
}

// waitConverged polls until every live node reports the identical global
// count for every (pattern, region) and that shared total is at least floor.
func waitConverged(t *testing.T, nodes []*fedNode, floor int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if fedViewsConverged(nodes) && globalTotals(nodes[0].sched) >= floor {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range nodes {
				t.Logf("%s: total=%d", n.origin, globalTotals(n.sched))
			}
			t.Fatalf("cluster did not converge to a shared view with total >= %d", floor)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fedViewsConverged(nodes []*fedNode) bool {
	keys := nodes[0].sched.PatternKeys()
	for _, key := range keys {
		for _, region := range fedRegions {
			want := nodes[0].sched.GlobalAssignments(key, region)
			for _, n := range nodes[1:] {
				if n.sched.GlobalAssignments(key, region) != want {
					return false
				}
			}
		}
	}
	return true
}

func TestThreeCoordinatorsKillRestartConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second federation campaign")
	}
	// Bind all listeners first so every node can be configured with its
	// peers' final URLs.
	lns := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peersOf := func(i int) []string {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		return peers
	}
	nodes := make([]*fedNode, 3)
	for i := range nodes {
		nodes[i] = startNode(t, lns[i], fmt.Sprintf("c%d", i), peersOf(i), uint64(100+i))
	}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()

	// The campaign anchor: node 0 assigns first, so the cluster-wide
	// minimum anchor is T0 and every schedule must rotate from it.
	t0 := time.Unix(6_000_000, 0)
	nodes[0].sched.Assign(fedClient("US"), t0)

	// Phase 1: disjoint populations. Each coordinator serves only its own
	// region, concurrently with the gossip loops.
	for i, n := range nodes {
		for p := 0; p < 40; p++ {
			n.sched.Assign(fedClient(fedRegions[i]), t0.Add(time.Duration(p+1)*time.Millisecond))
		}
	}
	waitConverged(t, nodes, 0)
	preKillTotal := globalTotals(nodes[0].sched)

	// Phase 2: kill coordinator 1 mid-campaign. The survivors keep serving
	// and mark the dead peer; nobody blocks.
	nodes[1].stop()
	for _, i := range []int{0, 2} {
		for p := 0; p < 20; p++ {
			if got := nodes[i].sched.Assign(fedClient(fedRegions[i]), t0.Add(time.Second)); len(got) == 0 {
				t.Fatalf("node %d blocked assignment while peer was down", i)
			}
		}
	}
	// The survivors' healthz must report the dead peer without going
	// degraded (2 of 3 coordinators is still a quorum).
	waitPeerDown(t, urls[0], urls[1])

	// Phase 3: restart on the same address with a fresh scheduler. The
	// incarnation rule: the replacement joins under a NEW origin; the old
	// incarnation's counts live on at the peers under "c1".
	nodes[1] = startNode(t, relisten(t, nodes[1].addr), "c1b", peersOf(1), 999)
	for p := 0; p < 20; p++ {
		nodes[1].sched.Assign(fedClient(fedRegions[1]), t0.Add(2*time.Second))
	}
	waitConverged(t, nodes, preKillTotal+60)
	if got := globalTotals(nodes[1].sched); got < preKillTotal {
		t.Fatalf("restarted coordinator recovered only %d of the %d pre-kill assignments", got, preKillTotal)
	}

	// The whole cluster agrees on the minimum anchor — including the
	// restarted node, which never saw T0 locally.
	for _, n := range nodes {
		if a := n.sched.Anchor(); a != t0.UnixNano() {
			t.Fatalf("%s anchor %d, want %d", n.origin, a, t0.UnixNano())
		}
	}

	// Phase 4: converged lockstep. With gossip keeping views current,
	// serialized picks must water-fill the image patterns to a global
	// per-region spread of at most one.
	ctx := context.Background()
	at := t0.Add(3 * time.Second)
	for pick := 0; pick < 30; pick++ {
		i := pick % 3
		region := fedRegions[pick%len(fedRegions)]
		nodes[i].sched.Assign(fedClient(region), at)
		// Force immediate convergence so the next pick sees this one.
		for _, n := range nodes {
			n.fed.RunRound(ctx)
		}
	}
	waitConverged(t, nodes, 0)
	keys := nodes[0].sched.PatternKeys()
	for _, region := range fedRegions {
		min, max := -1, -1
		for _, key := range keys[1:] { // skip the script-only focus pattern
			c := nodes[0].sched.GlobalAssignments(key, region)
			if min == -1 || c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("global balance spread in %s is %d (min=%d max=%d), want <= 1", region, max-min, min, max)
		}
	}

	// Phase 5: the focus schedule across every coordinator is bit-identical
	// to a single-coordinator baseline anchored at the same first
	// assignment.
	baseline := newIntegrationScheduler(424242)
	// Pin the baseline's rotation anchor by issuing its first assignment
	// at exactly the cluster's first-assignment instant.
	baseline.Assign(fedClient("US"), t0)
	if baseline.Anchor() != t0.UnixNano() {
		t.Fatalf("baseline anchor %d, want %d", baseline.Anchor(), t0.UnixNano())
	}
	for i := 0; i < 3*len(keys); i++ {
		tm := t0.Add(time.Duration(i)*fedWindow + fedWindow/2)
		want := baseline.FocusPattern(tm)
		for _, n := range nodes {
			if got := n.sched.FocusPattern(tm); got != want {
				t.Fatalf("%s focus at window %d = %q, baseline %q", n.origin, i, got, want)
			}
		}
	}
}

// waitPeerDown polls a coordinator's /v2/healthz until it reports peerURL as
// suspect or dead, asserting the federated health surface over real HTTP.
func waitPeerDown(t *testing.T, healthFrom, peerURL string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(healthFrom + api.V2HealthPath)
		if err == nil {
			var hr api.HealthResponse
			err = json.NewDecoder(resp.Body).Decode(&hr)
			resp.Body.Close()
			if err == nil {
				if hr.Status == api.StatusDegraded {
					t.Fatal("coordinator reported degraded with 2 of 3 nodes reachable")
				}
				for _, ph := range hr.Peers {
					if ph.URL == peerURL && ph.State != coordfed.PeerAlive {
						return
					}
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never marked peer %s suspect/dead", healthFrom, peerURL)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
