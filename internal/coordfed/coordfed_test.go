package coordfed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"encore/internal/api"
	"encore/internal/core"
	"encore/internal/geo"
	"encore/internal/pipeline"
	"encore/internal/scheduler"
	"encore/internal/wire"
)

// fedTaskSet builds the balance-test task set: one script-only focus pattern
// plus image patterns every family can measure, so Firefox clients always
// take the balanced pick path.
func fedTaskSet(patterns int) *pipeline.TaskSet {
	ts := pipeline.NewTaskSet()
	ts.Add(pipeline.Candidate{PatternKey: "domain:aaa-script-only.org", Type: core.TaskScript,
		TargetURL: "http://aaa-script-only.org/app.js", Strict: true})
	for i := 1; i < patterns; i++ {
		d := fmt.Sprintf("balance%02d.example.org", i)
		ts.Add(pipeline.Candidate{PatternKey: "domain:" + d, Type: core.TaskImage,
			TargetURL: "http://" + d + "/favicon.ico", Strict: true})
	}
	return ts
}

func newFedScheduler(seed uint64, window time.Duration) *scheduler.Scheduler {
	cfg := scheduler.DefaultConfig()
	cfg.QuorumWindow = window
	cfg.Seed = seed
	return scheduler.New(fedTaskSet(6), cfg)
}

// testNode is one coordinator for the unit tests: a scheduler with the
// gossip handler mounted on a loopback server.
type testNode struct {
	sched *scheduler.Scheduler
	fed   *Federation
	srv   *httptest.Server
}

func (n *testNode) close() {
	if n.fed != nil {
		n.fed.Close()
	}
	if n.srv != nil {
		n.srv.Close()
	}
}

// newCluster builds k nodes fully meshed over loopback HTTP. Federations are
// created but not Start()ed; tests step them with RunRound.
func newCluster(t *testing.T, k int, window time.Duration, token string) []*testNode {
	t.Helper()
	nodes := make([]*testNode, k)
	for i := range nodes {
		nodes[i] = &testNode{sched: newFedScheduler(uint64(i+1), window)}
		i := i
		nodes[i].srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			nodes[i].fed.Handler()(w, r)
		}))
	}
	for i, n := range nodes {
		var peers []string
		for j, p := range nodes {
			if j != i {
				peers = append(peers, p.srv.URL)
			}
		}
		fed, err := New(Config{
			Origin:    fmt.Sprintf("c%d", i),
			Scheduler: n.sched,
			Peers:     peers,
			Token:     token,
			Seed:      uint64(1000 + i),
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		n.fed = fed
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.close()
		}
	})
	return nodes
}

func driveNode(n *testNode, region geo.CountryCode, picks int) {
	at := time.Unix(6_000_000, 0)
	client := scheduler.ClientInfo{Region: region, Browser: core.BrowserFirefox, ExpectedDwellSeconds: 5}
	for i := 0; i < picks; i++ {
		n.sched.Assign(client, at)
	}
}

// viewsEqual asserts every node reports the identical global count for every
// (pattern, region).
func viewsEqual(t *testing.T, nodes []*testNode, regions []geo.CountryCode) {
	t.Helper()
	keys := nodes[0].sched.PatternKeys()
	for _, key := range keys {
		for _, region := range regions {
			want := nodes[0].sched.GlobalAssignments(key, region)
			for i, n := range nodes[1:] {
				if got := n.sched.GlobalAssignments(key, region); got != want {
					t.Fatalf("node %d global[%s/%s]=%d, node 0 has %d", i+1, key, region, got, want)
				}
			}
		}
	}
}

func TestExchangeConvergesTwoNodes(t *testing.T) {
	nodes := newCluster(t, 2, 1000*time.Hour, "")
	driveNode(nodes[0], "US", 17)
	driveNode(nodes[1], "PK", 23)

	// One push-pull round from node 0 converges both directions.
	nodes[0].fed.RunRound(context.Background())
	viewsEqual(t, nodes, []geo.CountryCode{"US", "PK"})

	// The global view equals the sum of the local contributions.
	keys := nodes[0].sched.PatternKeys()
	sumUS, sumPK := 0, 0
	for _, key := range keys {
		sumUS += nodes[0].sched.GlobalAssignments(key, "US")
		sumPK += nodes[0].sched.GlobalAssignments(key, "PK")
	}
	if sumUS != 17 || sumPK != 23 {
		t.Fatalf("merged totals US=%d PK=%d, want 17/23", sumUS, sumPK)
	}

	// Anchors converged to the minimum (both assigned at the same instant,
	// so they are equal — and equal to each node's view).
	if a, b := nodes[0].sched.Anchor(), nodes[1].sched.Anchor(); a != b || a == 0 {
		t.Fatalf("anchors diverged: %d vs %d", a, b)
	}

	st := nodes[0].fed.Stats()
	if st.Rounds == 0 || st.MergedDeltas == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

func TestExchangeIsIdempotentAcrossRounds(t *testing.T) {
	nodes := newCluster(t, 3, 1000*time.Hour, "")
	driveNode(nodes[0], "US", 10)
	driveNode(nodes[1], "PK", 12)
	driveNode(nodes[2], "CN", 14)
	for round := 0; round < 3; round++ {
		for _, n := range nodes {
			n.fed.RunRound(context.Background())
		}
	}
	snapshot := nodes[0].sched.CoverageSnapshot()
	// Extra duplicated rounds must change nothing.
	for round := 0; round < 3; round++ {
		for _, n := range nodes {
			n.fed.RunRound(context.Background())
		}
	}
	viewsEqual(t, nodes, []geo.CountryCode{"US", "PK", "CN"})
	after := nodes[0].sched.CoverageSnapshot()
	if fmt.Sprint(snapshot) != fmt.Sprint(after) {
		t.Fatal("duplicated gossip rounds changed the converged coverage view")
	}
}

func TestExchangeRelaysTransitively(t *testing.T) {
	// Chain topology: a <-> b <-> c; a and c are not peers.
	nodes := make([]*testNode, 3)
	for i := range nodes {
		nodes[i] = &testNode{sched: newFedScheduler(uint64(i+1), 1000*time.Hour)}
		i := i
		nodes[i].srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			nodes[i].fed.Handler()(w, r)
		}))
		defer nodes[i].close()
	}
	mk := func(i int, peers ...string) *Federation {
		fed, err := New(Config{Origin: fmt.Sprintf("c%d", i), Scheduler: nodes[i].sched, Peers: peers, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return fed
	}
	nodes[0].fed = mk(0, nodes[1].srv.URL)
	nodes[1].fed = mk(1, nodes[0].srv.URL, nodes[2].srv.URL)
	nodes[2].fed = mk(2, nodes[1].srv.URL)

	driveNode(nodes[0], "US", 9)
	nodes[0].fed.RunRound(context.Background()) // a -> b
	nodes[2].fed.RunRound(context.Background()) // c <-> b: b relays a's state
	key := nodes[0].sched.PatternKeys()[1]
	if got, want := nodes[2].sched.GlobalAssignments(key, "US"), nodes[0].sched.Assignments(key, "US"); got != want {
		t.Fatalf("c's relayed view of a: %d, want %d", got, want)
	}
}

func TestGossipAuth(t *testing.T) {
	nodes := newCluster(t, 2, 1000*time.Hour, "sekrit")
	driveNode(nodes[0], "US", 5)
	// Correct token converges.
	nodes[0].fed.RunRound(context.Background())
	viewsEqual(t, nodes, []geo.CountryCode{"US"})

	// A requester without the token is refused with the typed 403.
	g := &wire.Gossip{From: "intruder", ScheduleHash: nodes[1].sched.ScheduleHash()}
	resp, err := http.Post(nodes[1].srv.URL+api.V2GossipPath, wire.ContentTypeGossip,
		bytes.NewReader(wire.AppendGossipFrame(nil, g)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated gossip got %d, want 403", resp.StatusCode)
	}
	var apiErr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != api.CodeUnauthorizedPeer {
		t.Fatalf("error code %q, want %q", apiErr.Code, api.CodeUnauthorizedPeer)
	}
	if nodes[1].fed.Stats().Refused == 0 {
		t.Fatal("refusal not counted")
	}
}

func TestGossipScheduleMismatch(t *testing.T) {
	nodes := newCluster(t, 2, 1000*time.Hour, "")
	g := &wire.Gossip{From: "other", ScheduleHash: 12345}
	resp, err := http.Post(nodes[0].srv.URL+api.V2GossipPath, wire.ContentTypeGossip,
		bytes.NewReader(wire.AppendGossipFrame(nil, g)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched gossip got %d, want 409", resp.StatusCode)
	}
	var apiErr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != api.CodeScheduleMismatch {
		t.Fatalf("error code %q, want %q", apiErr.Code, api.CodeScheduleMismatch)
	}

	// And a client whose peer runs a different window marks the exchange
	// failed rather than merging anything.
	other := &testNode{sched: newFedScheduler(9, 999*time.Hour)}
	other.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		other.fed.Handler()(w, r)
	}))
	defer other.close()
	fed, err := New(Config{Origin: "cx", Scheduler: other.sched, Peers: []string{nodes[0].srv.URL}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	other.fed = fed
	other.fed.RunRound(context.Background())
	if st := other.fed.Stats(); st.Failures != 1 {
		t.Fatalf("mismatched exchange failures = %d, want 1", st.Failures)
	}
}

func TestGossipMalformedBody(t *testing.T) {
	nodes := newCluster(t, 2, 1000*time.Hour, "")
	for _, body := range [][]byte{nil, []byte("not a frame"), make([]byte, wire.FrameHeaderLen)} {
		resp, err := http.Post(nodes[0].srv.URL+api.V2GossipPath, wire.ContentTypeGossip, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && body != nil {
			t.Fatalf("malformed gossip body got %d, want 400", resp.StatusCode)
		}
	}
}

func TestPeerStatesAndDegraded(t *testing.T) {
	sched := newFedScheduler(1, 1000*time.Hour)
	fed, err := New(Config{
		Origin:    "lonely",
		Scheduler: sched,
		// An address nothing listens on: every exchange fails fast.
		Peers:        []string{"http://127.0.0.1:9", "http://127.0.0.1:10"},
		SuspectAfter: 2,
		DeadAfter:    4,
		Timeout:      200 * time.Millisecond,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fed.Degraded() {
		t.Fatal("fresh federation must not be degraded before any missed round")
	}
	for i := 0; i < 4; i++ {
		fed.RunRound(context.Background())
	}
	health := fed.PeerHealth(time.Now())
	if len(health) != 2 {
		t.Fatalf("PeerHealth reported %d peers, want 2", len(health))
	}
	for _, ph := range health {
		if ph.State != PeerDead {
			t.Fatalf("peer %s state %q after 4 missed rounds, want dead", ph.URL, ph.State)
		}
		if ph.ConsecutiveFailures != 4 {
			t.Fatalf("failures = %d, want 4", ph.ConsecutiveFailures)
		}
		if ph.LagMillis != -1 {
			t.Fatalf("lag = %d before any success, want -1", ph.LagMillis)
		}
	}
	// Both peers unreachable out of a 3-node set: quorum (2) lost.
	if !fed.Degraded() {
		t.Fatal("federation must report degraded with a quorum unreachable")
	}
	// Assignment still proceeds — degraded, never down.
	at := time.Unix(6_000_000, 0)
	tasks := sched.Assign(scheduler.ClientInfo{Region: "US", Browser: core.BrowserFirefox, ExpectedDwellSeconds: 5}, at)
	if len(tasks) == 0 {
		t.Fatal("Assign blocked while degraded")
	}
}

func TestDegradedQuorumMath(t *testing.T) {
	// K=3: one dead peer of two leaves 2/3 reachable — still quorum.
	nodes := newCluster(t, 3, 1000*time.Hour, "")
	nodes[1].srv.Close() // kill one peer's listener
	for i := 0; i < 3; i++ {
		nodes[0].fed.RunRound(context.Background())
	}
	if nodes[0].fed.Degraded() {
		t.Fatal("one dead peer of two must not be degraded (quorum = 2 of 3, self counts)")
	}
}

func TestNextDelayJitterBounds(t *testing.T) {
	sched := newFedScheduler(1, 1000*time.Hour)
	fed, err := New(Config{
		Origin: "j", Scheduler: sched, Peers: []string{"http://127.0.0.1:9"},
		Interval: time.Second, MaxBackoff: 8 * time.Second, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := fed.peers[0]
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		d := fed.nextDelay(p)
		if d < time.Second/2 || d > time.Second {
			t.Fatalf("healthy delay %v outside [interval/2, interval]", d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("healthy delays barely vary (%d distinct values in 200 draws): jitter missing", len(seen))
	}
	// Failing peers back off exponentially with full jitter, capped.
	p.mu.Lock()
	p.failures = 20
	p.mu.Unlock()
	for i := 0; i < 100; i++ {
		d := fed.nextDelay(p)
		if d < 4*time.Second || d > 8*time.Second {
			t.Fatalf("capped backoff %v outside [max/2, max]", d)
		}
	}
}

func TestHealthzViaHandler(t *testing.T) {
	// PeerHealth + Degraded surface through api.HealthResponse fields the
	// coordserver attaches; pin the JSON shape here where the types meet.
	sched := newFedScheduler(1, 1000*time.Hour)
	fed, err := New(Config{Origin: "c0", Scheduler: sched, Peers: []string{"http://127.0.0.1:9"}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp := api.HealthResponse{Status: api.StatusOK, Origin: fed.Origin(), Peers: fed.PeerHealth(time.Now())}
	raw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"origin":"c0"`, `"peers":[`, `"state":"alive"`, `"lag_millis":-1`} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("health JSON %s missing %s", raw, want)
		}
	}
}
