// Package coordfed federates coordinators: N `encore-coordinator` processes
// serve disjoint (or overlapping) client populations and converge on one
// global coverage view, removing the control plane's single point of failure
// the same way PR 6 removed the collector's.
//
// The design leans on two properties the scheduler already has. First, its
// per-(region, pattern) assignment counters only ever grow, so per-origin
// count vectors form a G-counter CRDT: merging is pointwise max, which is
// commutative, idempotent, and monotone, and therefore converges under
// arbitrary message loss, duplication, reordering, and relay. Second, focus
// rotation is a pure function of (anchor, time), so coordinators that agree
// on the anchor — by the deterministic minimum-non-zero-anchor-wins rule
// carried in every exchange — derive bit-identical focus schedules with no
// further coordination.
//
// Anti-entropy runs as push-pull gossip over POST /v2/gossip (binary
// wire.Gossip frames on the existing api router): a round sends the local
// digest (every origin's coverage version this coordinator knows) plus full
// per-origin state for whatever the peer was last known to lack; the peer
// merges, then answers with its own digest and the states the requester's
// digest proved it lacks. Third-party origins relay transitively, so a
// partition heals even between coordinators that are not direct peers.
//
// Failure is the steady state: a peer that misses rounds is marked suspect,
// then dead, with probing backed off under the SDK's capped full-jitter
// policy (api.BackoffDelay) — never abandoned, so a revived peer
// re-converges on its first successful exchange. Nothing in this package
// sits on the Assign path; local assignment always proceeds on the last
// merged view — degraded, never down — and /v2/healthz reports per-peer lag
// and status "degraded" while a quorum of the coordinator set is
// unreachable.
package coordfed

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"encore/internal/api"
	"encore/internal/scheduler"
	"encore/internal/stats"
	"encore/internal/wire"
)

// Peer states reported on /v2/healthz.
const (
	PeerAlive   = "alive"
	PeerSuspect = "suspect"
	PeerDead    = "dead"
)

// Config parameterizes a coordinator's membership in a federation.
type Config struct {
	// Origin is this coordinator's identity: the key its G-counter
	// contribution lives under on every peer. Origins must be unique across
	// the federation, including across restarts of the same process when
	// the scheduler restarts empty — a rejoining coordinator takes a fresh
	// origin (an incarnation) so its pre-crash counts, preserved on peers
	// under the old origin, merge back as remote state instead of being
	// clobbered.
	Origin string
	// Scheduler is the local scheduler whose coverage is federated.
	Scheduler *scheduler.Scheduler
	// Peers are the other coordinators' base URLs.
	Peers []string
	// Interval is the target gap between gossip rounds per peer; each round
	// waits a full-jittered interval (interval/2 + rand(interval/2)) so K
	// coordinators never synchronize into exchange storms, in particular
	// after a shared partition heals. Default 1s.
	Interval time.Duration
	// Token, when set, is required (as a bearer credential, compared in
	// constant time) on every inbound exchange and sent on every outbound
	// one.
	Token string
	// Transport is the outbound HTTP transport (chaos runs wrap it in a
	// faultinject.RoundTripper); nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Timeout bounds one exchange end-to-end. Default 5s.
	Timeout time.Duration
	// SuspectAfter and DeadAfter are the consecutive-failure thresholds for
	// marking a peer suspect / dead. Defaults 3 and 8.
	SuspectAfter int
	DeadAfter    int
	// MaxBackoff caps the failed-peer probing backoff. Default 30s.
	MaxBackoff time.Duration
	// Seed drives the jitter RNGs; chaos runs derive it from the campaign
	// seed so every delay replays.
	Seed uint64
	// Logf, when set, receives peer state transitions and refused
	// exchanges.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of the federation's counters.
type Stats struct {
	// Rounds counts outbound exchange attempts; Failures the attempts that
	// did not complete.
	Rounds   uint64
	Failures uint64
	// MergedDeltas counts per-origin states merged in, from both directions
	// of the exchange.
	MergedDeltas uint64
	// Served counts inbound exchanges answered successfully.
	Served uint64
	// Refused counts inbound exchanges rejected (bad auth, schedule
	// mismatch, malformed frame).
	Refused uint64
}

// peer is one remote coordinator as this one sees it.
type peer struct {
	url string

	mu sync.Mutex
	// known maps origin -> the coverage version this peer acknowledged
	// holding (from its last response digest); deltas are sent only for
	// origins it lags on.
	known map[string]uint64
	// failures counts consecutive failed exchanges; lastOK is the wall
	// time of the last success (zero before the first).
	failures int
	lastOK   time.Time
	rng      stats.RNG
}

// state derives the peer's health state from its failure count.
func (p *peer) state(suspectAfter, deadAfter int) string {
	switch {
	case p.failures >= deadAfter:
		return PeerDead
	case p.failures >= suspectAfter:
		return PeerSuspect
	default:
		return PeerAlive
	}
}

// Federation runs one coordinator's side of the gossip protocol. All methods
// are safe for concurrent use; none of them is ever called by, or blocks,
// the scheduler's Assign path.
type Federation struct {
	cfg    Config
	sched  *scheduler.Scheduler
	client *http.Client
	peers  []*peer

	rounds   atomic.Uint64
	failures atomic.Uint64
	merged   atomic.Uint64
	served   atomic.Uint64
	refused  atomic.Uint64

	startOnce sync.Once
	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// New builds a Federation. It does not start probing; call Start for the
// background loops or RunRound to step exchanges explicitly (what the
// deterministic chaos scenarios do).
func New(cfg Config) (*Federation, error) {
	if cfg.Origin == "" {
		return nil, fmt.Errorf("coordfed: Origin is required")
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("coordfed: Scheduler is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter + 5
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	f := &Federation{
		cfg:    cfg,
		sched:  cfg.Scheduler,
		client: &http.Client{Transport: transport, Timeout: cfg.Timeout},
		closed: make(chan struct{}),
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	for i, url := range cfg.Peers {
		f.peers = append(f.peers, &peer{
			url:   url,
			known: make(map[string]uint64),
			rng:   stats.RNGFrom(seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)),
		})
	}
	return f, nil
}

// Origin returns this coordinator's federation identity.
func (f *Federation) Origin() string { return f.cfg.Origin }

// Start launches one probe goroutine per peer. Each loop sleeps a
// full-jittered interval between rounds — or the SDK's capped, jittered
// exponential backoff while the peer is failing — then exchanges once.
func (f *Federation) Start() {
	f.startOnce.Do(func() {
		for _, p := range f.peers {
			f.wg.Add(1)
			go f.probeLoop(p)
		}
	})
}

// Close stops the probe loops and waits for them. It never touches the
// scheduler: the last merged view keeps serving assignments.
func (f *Federation) Close() {
	f.closeOnce.Do(func() { close(f.closed) })
	f.wg.Wait()
}

func (f *Federation) probeLoop(p *peer) {
	defer f.wg.Done()
	timer := time.NewTimer(f.nextDelay(p))
	defer timer.Stop()
	for {
		select {
		case <-f.closed:
			return
		case <-timer.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), f.cfg.Timeout)
		f.exchange(ctx, p)
		cancel()
		timer.Reset(f.nextDelay(p))
	}
}

// nextDelay computes the sleep before the peer's next round: the
// full-jittered interval while healthy, the SDK backoff policy (base =
// interval, capped at MaxBackoff, full jitter) after failures — both drawn
// from the peer's seeded RNG so campaigns replay.
func (f *Federation) nextDelay(p *peer) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failures > 0 {
		return api.BackoffDelay(f.cfg.Interval, f.cfg.MaxBackoff, p.failures, p.rng.Int63n)
	}
	half := f.cfg.Interval / 2
	if half <= 0 {
		return f.cfg.Interval
	}
	return half + time.Duration(p.rng.Int63n(int64(half)+1))
}

// RunRound performs one synchronous exchange with every peer in
// configuration order. The chaos scenarios and tests step the protocol with
// it instead of racing wall-clock probe loops; each call is one
// deterministic anti-entropy round.
func (f *Federation) RunRound(ctx context.Context) {
	for _, p := range f.peers {
		select {
		case <-ctx.Done():
			return
		default:
		}
		f.exchange(ctx, p)
	}
}

// exchange runs one push-pull gossip with a peer: send digest + owed deltas,
// merge the response's deltas, and record the peer's acknowledged versions.
func (f *Federation) exchange(ctx context.Context, p *peer) {
	f.rounds.Add(1)

	p.mu.Lock()
	known := make(map[string]uint64, len(p.known))
	for o, v := range p.known {
		known[o] = v
	}
	p.mu.Unlock()

	g := &wire.Gossip{
		From:         f.cfg.Origin,
		Anchor:       f.sched.Anchor(),
		ScheduleHash: f.sched.ScheduleHash(),
		Digest:       f.digest(),
		Deltas:       f.deltasFor(known),
	}
	body := wire.AppendGossipFrame(nil, g)

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+api.V2GossipPath, bytes.NewReader(body))
	if err != nil {
		f.fail(p, err)
		return
	}
	req.Header.Set("Content-Type", wire.ContentTypeGossip)
	if f.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+f.cfg.Token)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.fail(p, err)
		return
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		f.fail(p, fmt.Errorf("peer answered %d", resp.StatusCode))
		return
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, wire.FrameHeaderLen+wire.MaxFramePayload+1))
	if err != nil {
		f.fail(p, err)
		return
	}
	reply, err := decodeGossipFrame(respBody)
	if err != nil {
		f.fail(p, err)
		return
	}
	if reply.ScheduleHash != f.sched.ScheduleHash() {
		f.fail(p, fmt.Errorf("schedule hash mismatch"))
		return
	}
	f.sched.AdoptAnchor(reply.Anchor)
	f.mergeDeltas(reply.Deltas)

	p.mu.Lock()
	for _, d := range reply.Digest {
		if d.Version > p.known[d.Origin] {
			p.known[d.Origin] = d.Version
		}
	}
	if p.failures >= f.cfg.SuspectAfter {
		f.cfg.Logf("coordfed: peer %s recovered after %d failed rounds", p.url, p.failures)
	}
	p.failures = 0
	p.lastOK = time.Now()
	p.mu.Unlock()
}

// fail records one failed exchange and logs the peer's state transitions.
func (f *Federation) fail(p *peer, err error) {
	f.failures.Add(1)
	p.mu.Lock()
	p.failures++
	n := p.failures
	p.mu.Unlock()
	switch n {
	case f.cfg.SuspectAfter:
		f.cfg.Logf("coordfed: peer %s suspect after %d missed rounds (%v)", p.url, n, err)
	case f.cfg.DeadAfter:
		f.cfg.Logf("coordfed: peer %s dead after %d missed rounds (%v)", p.url, n, err)
	}
}

// digest lists every origin this coordinator knows — itself plus every
// merged remote — with the coverage version it holds, sorted for
// deterministic frames.
func (f *Federation) digest() []wire.GossipDigest {
	known := f.sched.KnownOrigins()
	dig := make([]wire.GossipDigest, 0, len(known)+1)
	dig = append(dig, wire.GossipDigest{Origin: f.cfg.Origin, Version: f.sched.CoverageVersion()})
	for _, origin := range sortedOrigins(known) {
		if origin == f.cfg.Origin {
			continue
		}
		dig = append(dig, wire.GossipDigest{Origin: origin, Version: known[origin]})
	}
	return dig
}

// deltasFor builds the full per-origin states the receiver lacks, judged
// against the versions it last acknowledged: the local contribution plus
// relayed third-party origins.
func (f *Federation) deltasFor(acked map[string]uint64) []wire.GossipDelta {
	var out []wire.GossipDelta
	if v := f.sched.CoverageVersion(); v > acked[f.cfg.Origin] {
		out = append(out, stateToDelta(f.cfg.Origin, f.sched.LocalCoverage()))
	}
	known := f.sched.KnownOrigins()
	for _, origin := range sortedOrigins(known) {
		if origin == f.cfg.Origin || known[origin] <= acked[origin] {
			continue
		}
		if cs, ok := f.sched.RemoteCoverage(origin); ok {
			out = append(out, stateToDelta(origin, cs))
		}
	}
	return out
}

// mergeDeltas merges received per-origin states, skipping any delta claiming
// this coordinator's own origin: the local counters are authoritative, and
// merging an echo of them as remote state would double-count.
func (f *Federation) mergeDeltas(deltas []wire.GossipDelta) {
	for _, d := range deltas {
		if d.Origin == f.cfg.Origin {
			continue
		}
		f.sched.MergeCoverage(d.Origin, deltaToState(d))
		f.merged.Add(1)
	}
}

// Handler serves POST /v2/gossip: authenticate, decode, refuse schedule
// mismatches, merge the requester's deltas and anchor, and answer with the
// post-merge digest plus the states the requester's digest proved it lacks.
func (f *Federation) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if f.cfg.Token != "" &&
			subtle.ConstantTimeCompare([]byte(api.BearerToken(r)), []byte(f.cfg.Token)) != 1 {
			f.refused.Add(1)
			api.WriteError(w, api.Errorf(api.CodeUnauthorizedPeer, "gossip requires the federation token"))
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, wire.FrameHeaderLen+wire.MaxFramePayload+1))
		if err != nil {
			f.refused.Add(1)
			api.WriteError(w, api.Errorf(api.CodeBadRequest, "reading gossip body"))
			return
		}
		g, err := decodeGossipFrame(body)
		if err != nil {
			f.refused.Add(1)
			api.WriteError(w, api.Errorf(api.CodeBadRequest, "malformed gossip frame"))
			return
		}
		if g.ScheduleHash != f.sched.ScheduleHash() {
			f.refused.Add(1)
			f.cfg.Logf("coordfed: refusing gossip from %s: schedule hash %x != %x", g.From, g.ScheduleHash, f.sched.ScheduleHash())
			api.WriteError(w, api.Errorf(api.CodeScheduleMismatch, "peer %s runs a different task set or quorum window", g.From))
			return
		}
		f.sched.AdoptAnchor(g.Anchor)
		f.mergeDeltas(g.Deltas)

		acked := make(map[string]uint64, len(g.Digest))
		for _, d := range g.Digest {
			acked[d.Origin] = d.Version
		}
		reply := &wire.Gossip{
			From:         f.cfg.Origin,
			Anchor:       f.sched.Anchor(),
			ScheduleHash: f.sched.ScheduleHash(),
			Digest:       f.digest(),
			Deltas:       f.deltasFor(acked),
		}
		f.served.Add(1)
		w.Header().Set("Content-Type", wire.ContentTypeGossip)
		_, _ = w.Write(wire.AppendGossipFrame(nil, reply))
	}
}

// PeerHealth reports every peer's gossip state for /v2/healthz.
func (f *Federation) PeerHealth(now time.Time) []api.PeerHealth {
	out := make([]api.PeerHealth, 0, len(f.peers))
	for _, p := range f.peers {
		p.mu.Lock()
		ph := api.PeerHealth{
			URL:                 p.url,
			State:               p.state(f.cfg.SuspectAfter, f.cfg.DeadAfter),
			ConsecutiveFailures: p.failures,
			LagMillis:           -1,
		}
		if !p.lastOK.IsZero() {
			ph.LagMillis = now.Sub(p.lastOK).Milliseconds()
			if ph.LagMillis < 0 {
				ph.LagMillis = 0
			}
		}
		p.mu.Unlock()
		out = append(out, ph)
	}
	return out
}

// Degraded reports whether a quorum of the coordinator set (peers plus this
// coordinator, counting itself reachable) is currently unreachable. A
// degraded coordinator keeps assigning from its last merged view; the status
// is advice to operators, never a gate on Assign.
func (f *Federation) Degraded() bool {
	if len(f.peers) == 0 {
		return false
	}
	reachable := 1 // self
	for _, p := range f.peers {
		p.mu.Lock()
		if p.failures < f.cfg.SuspectAfter {
			reachable++
		}
		p.mu.Unlock()
	}
	total := len(f.peers) + 1
	return reachable < total/2+1
}

// Stats returns a snapshot of the federation's counters.
func (f *Federation) Stats() Stats {
	return Stats{
		Rounds:       f.rounds.Load(),
		Failures:     f.failures.Load(),
		MergedDeltas: f.merged.Load(),
		Served:       f.served.Load(),
		Refused:      f.refused.Load(),
	}
}

// decodeGossipFrame validates one CRC frame and decodes its gossip payload.
func decodeGossipFrame(body []byte) (wire.Gossip, error) {
	if len(body) < wire.FrameHeaderLen {
		return wire.Gossip{}, wire.ErrTruncated
	}
	n := binary.LittleEndian.Uint32(body[0:4])
	if uint64(n) > wire.MaxFramePayload {
		return wire.Gossip{}, wire.ErrFrameLength
	}
	if len(body) != wire.FrameHeaderLen+int(n) {
		return wire.Gossip{}, wire.ErrTruncated
	}
	payload := body[wire.FrameHeaderLen:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(body[4:8]) {
		return wire.Gossip{}, wire.ErrChecksum
	}
	return wire.DecodeGossip(payload)
}

// stateToDelta converts a scheduler coverage state to its wire form.
func stateToDelta(origin string, cs scheduler.CoverageState) wire.GossipDelta {
	d := wire.GossipDelta{Origin: origin, Version: cs.Version}
	for _, rc := range cs.Regions {
		d.Regions = append(d.Regions, wire.GossipRegion{Region: rc.Region, Counts: rc.Counts})
	}
	return d
}

// deltaToState converts a wire delta to the scheduler's merge input.
func deltaToState(d wire.GossipDelta) scheduler.CoverageState {
	cs := scheduler.CoverageState{Version: d.Version}
	for _, r := range d.Regions {
		cs.Regions = append(cs.Regions, scheduler.RegionCounts{Region: r.Region, Counts: r.Counts})
	}
	return cs
}

// sortedOrigins returns the map's keys sorted, for deterministic frames.
func sortedOrigins(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for o := range m {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}
