package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func generated() (Task, string) {
	task := Task{
		MeasurementID: "m-obfuscate-1",
		Type:          TaskImage,
		TargetURL:     "http://censored.com/favicon.ico",
		PatternKey:    "domain:censored.com",
	}
	js := GenerateTaskScript(task, SnippetOptions{
		CoordinatorURL: "//coordinator.example.org",
		CollectorURL:   "//collector.example.org",
	})
	return task, js
}

func TestMinifyScript(t *testing.T) {
	_, js := generated()
	withComment := "// encore measurement tasks\n" + js
	min := MinifyScript(withComment)
	if len(min) >= len(withComment) {
		t.Fatalf("minified script not smaller: %d vs %d", len(min), len(withComment))
	}
	if strings.Contains(min, "// encore") {
		t.Fatal("comment survived minification")
	}
	// Functional content must survive: target URL, collector, callbacks.
	for _, want := range []string{"//censored.com/favicon.ico", "collector.example.org", "onload", "onerror", `submitToCollector("init")`} {
		if !strings.Contains(min, want) {
			t.Fatalf("minified script lost %q", want)
		}
	}
	if MinifyScript("") != "" {
		t.Fatal("empty script should minify to empty")
	}
}

func TestObfuscateScriptRenamesIdentifiers(t *testing.T) {
	task, js := generated()
	obf := ObfuscateScript(js, task.MeasurementID)
	if strings.Contains(obf, "var M = Object()") || strings.Contains(obf, "M.sendSuccess") {
		t.Fatalf("well-known identifiers survived obfuscation:\n%s", obf)
	}
	// Behaviour-critical strings must survive.
	for _, want := range []string{task.MeasurementID, "//censored.com/favicon.ico", "collector.example.org", "cmh-id", "cmh-result"} {
		if !strings.Contains(obf, want) {
			t.Fatalf("obfuscated script lost %q", want)
		}
	}
	// Different seeds produce different identifiers (no fixed signature).
	other := ObfuscateScript(js, "m-obfuscate-2")
	if obf == other {
		t.Fatal("obfuscation is identical across seeds; DPI could signature it")
	}
}

func TestQuickObfuscationPreservesSubmissionProtocol(t *testing.T) {
	opts := SnippetOptions{CoordinatorURL: "//c.example.org", CollectorURL: "//d.example.org"}
	types := TaskTypes()
	f := func(idRaw uint32, typePick uint8) bool {
		task := Task{
			MeasurementID:  "m-" + identifierSuffix(string(rune('a'+idRaw%26))),
			Type:           types[int(typePick)%len(types)],
			TargetURL:      "http://t.example.net/x.png",
			CachedImageURL: "http://t.example.net/y.png",
			PatternKey:     "domain:t.example.net",
		}
		js := GenerateTaskScript(task, opts)
		obf := ObfuscateScript(js, task.MeasurementID)
		return strings.Contains(obf, task.MeasurementID) &&
			strings.Contains(obf, "d.example.org") &&
			strings.Contains(obf, "cmh-result") &&
			!strings.Contains(obf, "var M = Object()")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
