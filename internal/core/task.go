// Package core implements Encore's primary contribution: measurement tasks
// that induce unmodified Web browsers to test the reachability of
// cross-origin resources, and the rules governing which task types can test
// which resources on which browsers (§4, Table 1).
//
// A measurement task is a small, self-contained HTML/JavaScript snippet that
// attempts to load a Web resource from a measurement target and reports
// whether the attempt succeeded. Four mechanisms are supported:
//
//   - Images: embed a small image with <img>; onload/onerror give explicit
//     binary feedback. Only works for image resources.
//   - Style sheets: load a sheet and probe getComputedStyle for its effect.
//     Only works for non-empty style sheets.
//   - Inline frames: load a full page in a hidden iframe, then time the load
//     of an image that page embeds; a fast (cached) load implies the page
//     loaded. Only for small pages with cacheable images and no side effects.
//   - Scripts: load any resource with <script>; Chrome fires onload iff the
//     HTTP fetch returned 200, regardless of content type. Chrome only, and
//     only for targets serving X-Content-Type-Options: nosniff.
//
// The package also defines the measurement records clients submit and the
// embed snippet webmasters add to their pages.
package core

import (
	"errors"
	"fmt"
	"time"
)

// TaskType identifies one of the four measurement mechanisms of Table 1.
type TaskType int

const (
	// TaskImage renders a cross-origin image and listens for onload/onerror.
	TaskImage TaskType = iota
	// TaskStylesheet loads a cross-origin style sheet and verifies that its
	// style rules were applied.
	TaskStylesheet
	// TaskIFrame loads a Web page in a hidden iframe and infers success
	// from the cache-timing of an image embedded on that page.
	TaskIFrame
	// TaskScript loads an arbitrary resource via the script tag; Chrome
	// reports onload iff the fetch returned HTTP 200.
	TaskScript
)

// TaskTypes lists all mechanisms in Table 1 order.
func TaskTypes() []TaskType {
	return []TaskType{TaskImage, TaskStylesheet, TaskIFrame, TaskScript}
}

// String names the task type.
func (t TaskType) String() string {
	switch t {
	case TaskImage:
		return "image"
	case TaskStylesheet:
		return "stylesheet"
	case TaskIFrame:
		return "iframe"
	case TaskScript:
		return "script"
	default:
		return fmt.Sprintf("TaskType(%d)", int(t))
	}
}

// Feedback describes how a mechanism learns whether the resource loaded.
type Feedback int

const (
	// FeedbackExplicit means the browser fires distinct success/failure
	// events (onload/onerror) for the mechanism.
	FeedbackExplicit Feedback = iota
	// FeedbackStyleProbe means success is detected by inspecting computed
	// style after loading a sheet.
	FeedbackStyleProbe
	// FeedbackTiming means success is inferred from load timing (the
	// cache-timing side channel).
	FeedbackTiming
)

// String names the feedback kind.
func (f Feedback) String() string {
	switch f {
	case FeedbackExplicit:
		return "explicit"
	case FeedbackStyleProbe:
		return "style-probe"
	case FeedbackTiming:
		return "timing"
	default:
		return fmt.Sprintf("Feedback(%d)", int(f))
	}
}

// FeedbackOf returns how each mechanism observes success (Table 1).
func FeedbackOf(t TaskType) Feedback {
	switch t {
	case TaskImage, TaskScript:
		return FeedbackExplicit
	case TaskStylesheet:
		return FeedbackStyleProbe
	case TaskIFrame:
		return FeedbackTiming
	default:
		return FeedbackExplicit
	}
}

// BrowserFamily identifies the client's browser engine, which determines
// which task types it can run (§4.3.2: the script mechanism is Chrome-only).
type BrowserFamily int

const (
	// BrowserChrome is Google Chrome / Chromium.
	BrowserChrome BrowserFamily = iota
	// BrowserFirefox is Mozilla Firefox.
	BrowserFirefox
	// BrowserSafari is Apple Safari.
	BrowserSafari
	// BrowserIE is Internet Explorer / legacy Edge.
	BrowserIE
	// BrowserOther covers everything else (mobile WebViews, bots).
	BrowserOther
)

// BrowserFamilies lists the modelled families.
func BrowserFamilies() []BrowserFamily {
	return []BrowserFamily{BrowserChrome, BrowserFirefox, BrowserSafari, BrowserIE, BrowserOther}
}

// String names the browser family.
func (b BrowserFamily) String() string {
	switch b {
	case BrowserChrome:
		return "chrome"
	case BrowserFirefox:
		return "firefox"
	case BrowserSafari:
		return "safari"
	case BrowserIE:
		return "ie"
	default:
		return "other"
	}
}

// SupportsTask reports whether a browser family can run a task type. All
// families support image, style sheet, and iframe tasks; only Chrome handles
// the script mechanism safely (§4.3.2).
func (b BrowserFamily) SupportsTask(t TaskType) bool {
	if t == TaskScript {
		return b == BrowserChrome
	}
	return true
}

// Task is one scheduled measurement: an instruction to a specific client to
// test one resource with one mechanism.
type Task struct {
	// MeasurementID uniquely identifies the measurement; every submission
	// (init, success, failure) carries it so the collection server can link
	// them (Appendix A).
	MeasurementID string
	// Type selects the mechanism.
	Type TaskType
	// TargetURL is the cross-origin resource the client attempts to load.
	// For iframe tasks this is the page loaded in the frame.
	TargetURL string
	// CachedImageURL is only set for iframe tasks: the image embedded on
	// TargetURL whose (re)load time reveals whether the page loaded.
	CachedImageURL string
	// PatternKey identifies what the measurement is evidence about (for
	// example "domain:youtube.com"); the detection algorithm aggregates by
	// this key.
	PatternKey string
	// TimeoutMillis bounds how long the client-side task waits before
	// reporting failure.
	TimeoutMillis int
	// Created records when the coordination server generated the task.
	Created time.Time
	// Control marks tasks that target known-unfiltered (or deliberately
	// invalid) resources for soundness validation (§7.1); controls are
	// excluded from filtering detection.
	Control bool
}

// Validation errors.
var (
	ErrMissingMeasurementID = errors.New("core: task missing measurement ID")
	ErrMissingTarget        = errors.New("core: task missing target URL")
	ErrMissingCachedImage   = errors.New("core: iframe task missing cached image URL")
	ErrMissingPatternKey    = errors.New("core: task missing pattern key")
)

// Validate checks that the task carries everything a client needs to run it.
func (t Task) Validate() error {
	if t.MeasurementID == "" {
		return ErrMissingMeasurementID
	}
	if t.TargetURL == "" {
		return ErrMissingTarget
	}
	if t.Type == TaskIFrame && t.CachedImageURL == "" {
		return ErrMissingCachedImage
	}
	if t.PatternKey == "" {
		return ErrMissingPatternKey
	}
	return nil
}

// Timeout returns the task timeout as a duration, defaulting to 30 seconds
// when unset, matching typical browser fetch patience.
func (t Task) Timeout() time.Duration {
	if t.TimeoutMillis <= 0 {
		return 30 * time.Second
	}
	return time.Duration(t.TimeoutMillis) * time.Millisecond
}

// State is the lifecycle state a client reports for a measurement. Clients
// submit an "init" record as soon as the task starts (so Encore knows which
// clients attempted measurements even if they never finish) followed by a
// terminal success or failure record.
type State string

const (
	// StateInit is submitted when the task begins executing.
	StateInit State = "init"
	// StateSuccess is submitted when the resource loaded.
	StateSuccess State = "success"
	// StateFailure is submitted when the resource failed to load.
	StateFailure State = "failure"
)

// ValidState reports whether s is one of the defined states.
func ValidState(s State) bool {
	switch s {
	case StateInit, StateSuccess, StateFailure:
		return true
	default:
		return false
	}
}

// Result is what a client learns from running one task. It is converted into
// one or more Submissions for delivery to the collection server.
type Result struct {
	Task Task
	// Success reports whether the cross-origin resource loaded (by the
	// mechanism's own notion of "loaded").
	Success bool
	// DurationMillis is how long the load took, as observed by the task's
	// JavaScript (timing feedback for iframe tasks, diagnostic otherwise).
	DurationMillis float64
	// Completed indicates the task ran to completion; false means the task
	// was abandoned (user navigated away) and only the init record exists.
	Completed bool
}

// State returns the terminal state the result maps to.
func (r Result) State() State {
	if !r.Completed {
		return StateInit
	}
	if r.Success {
		return StateSuccess
	}
	return StateFailure
}

// Submission is one record delivered to the collection server, mirroring the
// query parameters in Appendix A (cmh-id, cmh-result) plus the metadata the
// server records about the submitting client.
type Submission struct {
	MeasurementID string
	State         State
	// DurationMillis is the client-observed load duration (0 for init).
	DurationMillis float64
	// ClientIP is the submitting client's address as seen by the collection
	// server; analysis geolocates it.
	ClientIP string
	// UserAgent identifies the client's browser family.
	UserAgent string
	// OriginSite is the site hosting Encore that the client was visiting,
	// when the Referer header is present (the paper notes 3/4 of
	// measurements arrive with the Referer stripped).
	OriginSite string
	// Received is when the collection server accepted the submission.
	Received time.Time
}

// Validate checks the submission is well-formed.
func (s Submission) Validate() error {
	if s.MeasurementID == "" {
		return ErrMissingMeasurementID
	}
	if !ValidState(s.State) {
		return fmt.Errorf("core: invalid submission state %q", s.State)
	}
	return nil
}
