package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickScriptTasksOnlyForChrome checks that SuitableTypes never proposes
// the script mechanism to a browser family that cannot run it, regardless of
// the candidate's attributes.
func TestQuickScriptTasksOnlyForChrome(t *testing.T) {
	req := DefaultRequirements()
	f := func(size uint32, mimePick, familyPick uint8, cacheable, nosniff bool) bool {
		mimes := []string{"image/png", "text/css", "text/html", "application/javascript", "video/mp4"}
		families := BrowserFamilies()
		c := Candidate{
			URL:       "http://example.com/object",
			MIMEType:  mimes[int(mimePick)%len(mimes)],
			SizeBytes: int(size % 2_000_000),
			Cacheable: cacheable,
			NoSniff:   nosniff,
		}
		family := families[int(familyPick)%len(families)]
		for _, tt := range req.SuitableTypes(c, family) {
			if tt == TaskScript && family != BrowserChrome {
				return false
			}
			// Whatever is proposed must also pass the explicit check.
			if err := req.CheckCandidate(tt, c); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGeneratedTaskScriptsAreWellFormed checks invariants of the
// generated client-side JavaScript over arbitrary task parameters: the
// measurement ID and collector URL always appear, an init submission and a
// failure timeout are always present, and the script never contains an
// unescaped measurement target that could break out of its string literal.
func TestQuickGeneratedTaskScriptsAreWellFormed(t *testing.T) {
	opts := SnippetOptions{CoordinatorURL: "//coordinator.example.org", CollectorURL: "//collector.example.org"}
	f := func(idRaw uint32, typePick uint8, pathRaw uint16, timeout uint16) bool {
		id := fmt.Sprintf("m-%08x", idRaw)
		types := TaskTypes()
		task := Task{
			MeasurementID:  id,
			Type:           types[int(typePick)%len(types)],
			TargetURL:      fmt.Sprintf("http://target.example.net/obj-%d.png", pathRaw),
			CachedImageURL: fmt.Sprintf("http://target.example.net/img-%d.png", pathRaw),
			PatternKey:     "domain:target.example.net",
			TimeoutMillis:  int(timeout),
		}
		js := GenerateTaskScript(task, opts)
		if !strings.Contains(js, id) {
			return false
		}
		if !strings.Contains(js, "collector.example.org") {
			return false
		}
		if !strings.Contains(js, `submitToCollector("init")`) {
			return false
		}
		if !strings.Contains(js, "setTimeout(M.sendFailure") {
			return false
		}
		if strings.Contains(js, "eval(") {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTaskValidationConsistency checks that Validate accepts exactly the
// tasks that carry all required fields for their type.
func TestQuickTaskValidationConsistency(t *testing.T) {
	f := func(typePick uint8, hasID, hasTarget, hasPattern, hasCached bool) bool {
		types := TaskTypes()
		task := Task{Type: types[int(typePick)%len(types)]}
		if hasID {
			task.MeasurementID = "m-1"
		}
		if hasTarget {
			task.TargetURL = "http://t.example.org/x"
		}
		if hasPattern {
			task.PatternKey = "domain:t.example.org"
		}
		if hasCached {
			task.CachedImageURL = "http://t.example.org/y.png"
		}
		err := task.Validate()
		complete := hasID && hasTarget && hasPattern && (task.Type != TaskIFrame || hasCached)
		return (err == nil) == complete
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
