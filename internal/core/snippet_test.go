package core

import (
	"strings"
	"testing"
)

func snippetOpts() SnippetOptions {
	return SnippetOptions{
		CoordinatorURL: "//coordinator.encore-test.org",
		CollectorURL:   "//collector.encore-test.org",
	}
}

func TestEmbedSnippetIsOneLineAndSmall(t *testing.T) {
	s := EmbedSnippet(snippetOpts())
	if strings.Contains(s, "\n") {
		t.Fatal("embed snippet must be a single line")
	}
	if !strings.Contains(s, "coordinator.encore-test.org/task.js") {
		t.Fatalf("snippet does not reference the coordinator: %q", s)
	}
	// §6.3: "our prototype adds only 100 bytes to each origin page".
	if n := SnippetOverheadBytes(snippetOpts()); n > DefaultRequirements().MaxSnippetBytes {
		t.Fatalf("snippet is %d bytes, exceeding the %d-byte budget", n, DefaultRequirements().MaxSnippetBytes)
	}
}

func TestEmbedSnippetIFrame(t *testing.T) {
	s := EmbedSnippetIFrame(snippetOpts())
	if !strings.Contains(s, "<iframe") || !strings.Contains(s, "display:none") {
		t.Fatalf("iframe embed malformed: %q", s)
	}
}

func TestEmbedSnippetTrailingSlash(t *testing.T) {
	s := EmbedSnippet(SnippetOptions{CoordinatorURL: "//c.example.org/"})
	if strings.Contains(s, "org//task.js") {
		t.Fatalf("double slash in snippet: %q", s)
	}
}

func TestTaskScriptImage(t *testing.T) {
	task := Task{
		MeasurementID: "uuid-42",
		Type:          TaskImage,
		TargetURL:     "http://censored.com/favicon.ico",
		PatternKey:    "domain:censored.com",
	}
	js := GenerateTaskScript(task, snippetOpts())
	for _, want := range []string{
		`"uuid-42"`,
		"//censored.com/favicon.ico",
		"onload",
		"onerror",
		"display",
		`submitToCollector("init")`,
		"collector.encore-test.org",
		"cmh-id", "cmh-result",
	} {
		if !strings.Contains(js, want) {
			t.Fatalf("image task script missing %q:\n%s", want, js)
		}
	}
	// The task must not execute content from the measurement target.
	if strings.Contains(js, "eval(") {
		t.Fatal("task script must not eval remote content")
	}
}

func TestTaskScriptStylesheet(t *testing.T) {
	task := Task{
		MeasurementID: "uuid-43",
		Type:          TaskStylesheet,
		TargetURL:     "https://cdn.censored.com/style.css",
		PatternKey:    "domain:censored.com",
	}
	js := GenerateTaskScript(task, snippetOpts())
	for _, want := range []string{"stylesheet", "getComputedStyle", "rgb(0, 0, 255)", "//cdn.censored.com/style.css", "iframe"} {
		if !strings.Contains(js, want) {
			t.Fatalf("stylesheet task script missing %q", want)
		}
	}
}

func TestTaskScriptIFrame(t *testing.T) {
	task := Task{
		MeasurementID:  "uuid-44",
		Type:           TaskIFrame,
		TargetURL:      "http://censored.com/news/page-001.html",
		CachedImageURL: "http://censored.com/static/shared-1.png",
		PatternKey:     "exact:censored.com/news/page-001.html",
		TimeoutMillis:  8000,
	}
	js := GenerateTaskScript(task, snippetOpts())
	for _, want := range []string{"iframe", "//censored.com/news/page-001.html", "//censored.com/static/shared-1.png", "elapsed < 50", "8000"} {
		if !strings.Contains(js, want) {
			t.Fatalf("iframe task script missing %q", want)
		}
	}
}

func TestTaskScriptScriptMechanism(t *testing.T) {
	task := Task{
		MeasurementID: "uuid-45",
		Type:          TaskScript,
		TargetURL:     "http://censored.com/logo.png",
		PatternKey:    "domain:censored.com",
	}
	js := GenerateTaskScript(task, snippetOpts())
	for _, want := range []string{"createElement('script')", "//censored.com/logo.png", "onload", "onerror"} {
		if !strings.Contains(js, want) {
			t.Fatalf("script task script missing %q", want)
		}
	}
}

func TestTaskScriptAlwaysSubmitsInitAndHasTimeout(t *testing.T) {
	for _, tt := range TaskTypes() {
		task := Task{MeasurementID: "m", Type: tt, TargetURL: "http://t.com/x",
			CachedImageURL: "http://t.com/y.png", PatternKey: "k"}
		js := GenerateTaskScript(task, snippetOpts())
		if !strings.Contains(js, `submitToCollector("init")`) {
			t.Fatalf("%v task does not submit init", tt)
		}
		if !strings.Contains(js, "setTimeout(M.sendFailure") {
			t.Fatalf("%v task has no failure timeout", tt)
		}
	}
}

func TestSchemeRelative(t *testing.T) {
	if got := schemeRelative("http://a.com/x"); got != "//a.com/x" {
		t.Fatalf("got %q", got)
	}
	if got := schemeRelative("https://a.com/x"); got != "//a.com/x" {
		t.Fatalf("got %q", got)
	}
	if got := schemeRelative("//a.com/x"); got != "//a.com/x" {
		t.Fatalf("got %q", got)
	}
}
