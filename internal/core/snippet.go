package core

import (
	"fmt"
	"strings"
)

// SnippetOptions parameterize the client-side code Encore generates: the
// webmaster-facing embed snippet and the per-task JavaScript served by the
// coordination server.
type SnippetOptions struct {
	// CoordinatorURL is the base URL of the coordination server, e.g.
	// "//coordinator.example.org".
	CoordinatorURL string
	// CollectorURL is the base URL of the collection server.
	CollectorURL string
}

// EmbedSnippet returns the one-line HTML a webmaster adds to a page to enable
// Encore (§5.4). It references the coordination server, which generates a
// measurement task specific to the client on the fly.
func EmbedSnippet(opts SnippetOptions) string {
	base := strings.TrimSuffix(opts.CoordinatorURL, "/")
	return fmt.Sprintf(`<script async src="%s/task.js"></script>`, base)
}

// EmbedSnippetIFrame returns the alternative iframe-based embed the paper
// also describes, which isolates Encore entirely from the hosting page.
func EmbedSnippetIFrame(opts SnippetOptions) string {
	base := strings.TrimSuffix(opts.CoordinatorURL, "/")
	return fmt.Sprintf(`<iframe src="%s/frame.html" style="display:none" width="0" height="0"></iframe>`, base)
}

// GenerateTaskScript renders the JavaScript measurement task the coordination server
// serves to a client (Appendix A). The script embeds the target resource
// according to the task's mechanism, wires success/failure callbacks, and
// submits results to the collection server with the measurement ID.
func GenerateTaskScript(t Task, opts SnippetOptions) string {
	collector := strings.TrimSuffix(opts.CollectorURL, "/")
	var b strings.Builder
	b.WriteString("(function(){\n")
	b.WriteString("var M = Object();\n")
	fmt.Fprintf(&b, "M.measurementId = %q;\n", t.MeasurementID)
	fmt.Fprintf(&b, "M.taskType = %q;\n", t.Type.String())
	fmt.Fprintf(&b, "M.started = (new Date()).getTime();\n")
	fmt.Fprintf(&b, `M.submitToCollector = function(state) {
  var img = new Image();
  img.src = %q + "/submit?cmh-id=" + encodeURIComponent(M.measurementId) +
    "&cmh-result=" + encodeURIComponent(state) +
    "&cmh-elapsed=" + ((new Date()).getTime() - M.started);
};
`, collector)
	b.WriteString("M.sendSuccess = function() { M.submitToCollector(\"success\"); };\n")
	b.WriteString("M.sendFailure = function() { M.submitToCollector(\"failure\"); };\n")

	switch t.Type {
	case TaskImage:
		fmt.Fprintf(&b, `M.measure = function() {
  var img = document.createElement('img');
  img.src = %q;
  img.style.display = 'none';
  img.onload = M.sendSuccess;
  img.onerror = M.sendFailure;
  document.body.appendChild(img);
};
`, schemeRelative(t.TargetURL))
	case TaskStylesheet:
		fmt.Fprintf(&b, `M.measure = function() {
  var frame = document.createElement('iframe');
  frame.style.display = 'none';
  document.body.appendChild(frame);
  var doc = frame.contentDocument;
  var link = doc.createElement('link');
  link.rel = 'stylesheet';
  link.href = %q;
  var probe = doc.createElement('p');
  doc.body.appendChild(probe);
  link.onload = function() {
    var color = frame.contentWindow.getComputedStyle(probe).color;
    if (color === 'rgb(0, 0, 255)') { M.sendSuccess(); } else { M.sendFailure(); }
  };
  link.onerror = M.sendFailure;
  doc.head.appendChild(link);
};
`, schemeRelative(t.TargetURL))
	case TaskIFrame:
		fmt.Fprintf(&b, `M.measure = function() {
  var frame = document.createElement('iframe');
  frame.style.display = 'none';
  frame.src = %q;
  var done = function() {
    var started = (new Date()).getTime();
    var img = document.createElement('img');
    img.style.display = 'none';
    img.src = %q + '?cachecheck=' ;
    img.onload = function() {
      var elapsed = (new Date()).getTime() - started;
      if (elapsed < 50) { M.sendSuccess(); } else { M.sendFailure(); }
    };
    img.onerror = M.sendFailure;
    document.body.appendChild(img);
  };
  frame.onload = done;
  setTimeout(done, %d);
  document.body.appendChild(frame);
};
`, schemeRelative(t.TargetURL), schemeRelative(t.CachedImageURL), t.TimeoutOrDefaultMillis())
	case TaskScript:
		fmt.Fprintf(&b, `M.measure = function() {
  var s = document.createElement('script');
  s.src = %q;
  s.onload = M.sendSuccess;
  s.onerror = M.sendFailure;
  document.head.appendChild(s);
};
`, schemeRelative(t.TargetURL))
	}

	b.WriteString("M.submitToCollector(\"init\");\n")
	fmt.Fprintf(&b, "setTimeout(M.sendFailure, %d);\n", t.TimeoutOrDefaultMillis())
	b.WriteString("if (document.readyState === 'complete') { M.measure(); } else { window.addEventListener('load', M.measure); }\n")
	b.WriteString("})();\n")
	return b.String()
}

// TimeoutOrDefaultMillis returns the task timeout in milliseconds,
// defaulting to 30000.
func (t Task) TimeoutOrDefaultMillis() int {
	if t.TimeoutMillis <= 0 {
		return 30000
	}
	return t.TimeoutMillis
}

// schemeRelative rewrites http(s) URLs as scheme-relative ("//host/path") so
// the measurement request inherits the scheme of the origin page, as the
// paper's example tasks do.
func schemeRelative(url string) string {
	for _, prefix := range []string{"https://", "http://"} {
		if strings.HasPrefix(url, prefix) {
			return "//" + strings.TrimPrefix(url, prefix)
		}
	}
	return url
}

// SnippetOverheadBytes returns the number of bytes the webmaster-facing embed
// snippet adds to an origin page; §6.3 reports roughly 100 bytes.
func SnippetOverheadBytes(opts SnippetOptions) int {
	return len(EmbedSnippet(opts))
}
