package core

import (
	"errors"
	"testing"
	"time"
)

func TestTaskTypesAndStrings(t *testing.T) {
	types := TaskTypes()
	if len(types) != 4 {
		t.Fatalf("Table 1 lists four mechanisms, got %d", len(types))
	}
	names := map[string]bool{}
	for _, tt := range types {
		names[tt.String()] = true
	}
	for _, want := range []string{"image", "stylesheet", "iframe", "script"} {
		if !names[want] {
			t.Fatalf("missing mechanism %q", want)
		}
	}
	if TaskType(99).String() == "" {
		t.Fatal("unknown task type should render")
	}
}

func TestFeedbackOf(t *testing.T) {
	if FeedbackOf(TaskImage) != FeedbackExplicit {
		t.Fatal("image tasks give explicit feedback")
	}
	if FeedbackOf(TaskStylesheet) != FeedbackStyleProbe {
		t.Fatal("stylesheet tasks use style probing")
	}
	if FeedbackOf(TaskIFrame) != FeedbackTiming {
		t.Fatal("iframe tasks rely on cache timing")
	}
	if FeedbackOf(TaskScript) != FeedbackExplicit {
		t.Fatal("script tasks give explicit feedback on Chrome")
	}
	for _, f := range []Feedback{FeedbackExplicit, FeedbackStyleProbe, FeedbackTiming, Feedback(9)} {
		if f.String() == "" {
			t.Fatal("feedback should render")
		}
	}
}

func TestBrowserSupportsTask(t *testing.T) {
	for _, b := range BrowserFamilies() {
		for _, tt := range []TaskType{TaskImage, TaskStylesheet, TaskIFrame} {
			if !b.SupportsTask(tt) {
				t.Fatalf("%v should support %v", b, tt)
			}
		}
	}
	if !BrowserChrome.SupportsTask(TaskScript) {
		t.Fatal("Chrome supports the script mechanism")
	}
	for _, b := range []BrowserFamily{BrowserFirefox, BrowserSafari, BrowserIE, BrowserOther} {
		if b.SupportsTask(TaskScript) {
			t.Fatalf("%v must not be given script tasks (§4.3.2)", b)
		}
	}
	if BrowserChrome.String() != "chrome" || BrowserFamily(42).String() != "other" {
		t.Fatal("browser family strings broken")
	}
}

func validTask() Task {
	return Task{
		MeasurementID: "m-123",
		Type:          TaskImage,
		TargetURL:     "http://censored.com/favicon.ico",
		PatternKey:    "domain:censored.com",
		Created:       time.Now(),
	}
}

func TestTaskValidate(t *testing.T) {
	if err := validTask().Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	tk := validTask()
	tk.MeasurementID = ""
	if err := tk.Validate(); !errors.Is(err, ErrMissingMeasurementID) {
		t.Fatalf("err=%v", err)
	}
	tk = validTask()
	tk.TargetURL = ""
	if err := tk.Validate(); !errors.Is(err, ErrMissingTarget) {
		t.Fatalf("err=%v", err)
	}
	tk = validTask()
	tk.PatternKey = ""
	if err := tk.Validate(); !errors.Is(err, ErrMissingPatternKey) {
		t.Fatalf("err=%v", err)
	}
	tk = validTask()
	tk.Type = TaskIFrame
	if err := tk.Validate(); !errors.Is(err, ErrMissingCachedImage) {
		t.Fatalf("iframe task without cached image should fail: %v", err)
	}
	tk.CachedImageURL = "http://censored.com/logo.png"
	if err := tk.Validate(); err != nil {
		t.Fatalf("complete iframe task rejected: %v", err)
	}
}

func TestTaskTimeout(t *testing.T) {
	tk := validTask()
	if tk.Timeout() != 30*time.Second {
		t.Fatalf("default timeout = %v", tk.Timeout())
	}
	tk.TimeoutMillis = 5000
	if tk.Timeout() != 5*time.Second {
		t.Fatalf("timeout = %v", tk.Timeout())
	}
	if tk.TimeoutOrDefaultMillis() != 5000 {
		t.Fatal("TimeoutOrDefaultMillis should honour explicit value")
	}
	tk.TimeoutMillis = 0
	if tk.TimeoutOrDefaultMillis() != 30000 {
		t.Fatal("TimeoutOrDefaultMillis default should be 30000")
	}
}

func TestResultState(t *testing.T) {
	r := Result{Task: validTask(), Success: true, Completed: true}
	if r.State() != StateSuccess {
		t.Fatalf("state=%v", r.State())
	}
	r.Success = false
	if r.State() != StateFailure {
		t.Fatalf("state=%v", r.State())
	}
	r.Completed = false
	if r.State() != StateInit {
		t.Fatalf("abandoned task state=%v", r.State())
	}
}

func TestValidState(t *testing.T) {
	for _, s := range []State{StateInit, StateSuccess, StateFailure} {
		if !ValidState(s) {
			t.Fatalf("state %q should be valid", s)
		}
	}
	if ValidState("bogus") {
		t.Fatal("bogus state accepted")
	}
}

func TestSubmissionValidate(t *testing.T) {
	s := Submission{MeasurementID: "m-1", State: StateSuccess}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.MeasurementID = ""
	if err := s.Validate(); !errors.Is(err, ErrMissingMeasurementID) {
		t.Fatalf("err=%v", err)
	}
	s = Submission{MeasurementID: "m-1", State: "weird"}
	if err := s.Validate(); err == nil {
		t.Fatal("invalid state accepted")
	}
}
