package core

import (
	"fmt"
	"strings"
)

// The coordination server "minifies and obfuscates the source code before
// sending it to a client" (Appendix A), and §8 argues that blocking Encore
// via deep packet inspection "should be difficult, because we can easily
// disguise tasks' code using JavaScript obfuscation". This file implements
// both transformations. They are deliberately simple — whitespace and comment
// stripping plus identifier renaming derived from the measurement ID — which
// is enough to defeat naive signature matching while keeping the output
// auditable in tests.

// MinifyScript removes comments, leading/trailing whitespace, and blank lines
// from generated task JavaScript. It does not attempt full JS parsing; the
// generated scripts only use line comments and never embed "//" inside string
// literals other than scheme-relative URLs, which are preserved because they
// never start a line.
func MinifyScript(js string) string {
	var out []string
	for _, line := range strings.Split(js, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		out = append(out, trimmed)
	}
	return strings.Join(out, "\n")
}

// ObfuscateScript minifies the script and renames the well-known identifiers
// the generator emits (the measurement object M and its methods) to values
// derived from the seed string, so the code serving two different clients
// shares no fixed byte signature beyond the JavaScript the Web already uses.
func ObfuscateScript(js, seed string) string {
	minified := MinifyScript(js)
	suffix := identifierSuffix(seed)
	replacements := []struct{ from, to string }{
		{"M.measurementId", "_e" + suffix + ".mid"},
		{"M.taskType", "_e" + suffix + ".tt"},
		{"M.started", "_e" + suffix + ".t0"},
		{"M.submitToCollector", "_e" + suffix + ".s"},
		{"M.sendSuccess", "_e" + suffix + ".ok"},
		{"M.sendFailure", "_e" + suffix + ".no"},
		{"M.measure", "_e" + suffix + ".m"},
		{"var M = Object();", "var _e" + suffix + " = Object();"},
	}
	out := minified
	for _, r := range replacements {
		out = strings.ReplaceAll(out, r.from, r.to)
	}
	return out
}

// identifierSuffix derives a short alphanumeric suffix from a seed string
// (normally the measurement ID) using an FNV-style hash, so identifiers vary
// per client but remain valid JavaScript names.
func identifierSuffix(seed string) string {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(seed); i++ {
		h ^= uint64(seed[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%06x", h&0xffffff)
}
