package core

import (
	"errors"
	"testing"
)

func TestCheckImageCandidate(t *testing.T) {
	req := DefaultRequirements()
	small := Candidate{URL: "http://x.com/favicon.ico", MIMEType: "image/x-icon", SizeBytes: 800}
	if err := req.CheckCandidate(TaskImage, small); err != nil {
		t.Fatalf("small image rejected: %v", err)
	}
	if !req.PreferredImageBound(small) {
		t.Fatal("800-byte image should satisfy the strict bound")
	}
	medium := Candidate{MIMEType: "image/png", SizeBytes: 3000}
	if err := req.CheckCandidate(TaskImage, medium); err != nil {
		t.Fatalf("3KB image should pass under the relaxed bound: %v", err)
	}
	if req.PreferredImageBound(medium) {
		t.Fatal("3KB image should not satisfy the strict bound")
	}
	big := Candidate{MIMEType: "image/jpeg", SizeBytes: 200 * 1024}
	if err := req.CheckCandidate(TaskImage, big); !errors.Is(err, ErrUnsuitable) {
		t.Fatalf("200KB image should be rejected: %v", err)
	}
	notImage := Candidate{MIMEType: "text/html", SizeBytes: 500}
	if err := req.CheckCandidate(TaskImage, notImage); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("non-image should be rejected for image task")
	}
}

func TestCheckStylesheetCandidate(t *testing.T) {
	req := DefaultRequirements()
	ok := Candidate{MIMEType: "text/css", SizeBytes: 4000}
	if err := req.CheckCandidate(TaskStylesheet, ok); err != nil {
		t.Fatalf("stylesheet rejected: %v", err)
	}
	empty := Candidate{MIMEType: "text/css", SizeBytes: 0}
	if err := req.CheckCandidate(TaskStylesheet, empty); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("empty stylesheet should be rejected (Table 1)")
	}
	wrong := Candidate{MIMEType: "application/javascript", SizeBytes: 100}
	if err := req.CheckCandidate(TaskStylesheet, wrong); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("non-CSS should be rejected")
	}
	huge := Candidate{MIMEType: "text/css", SizeBytes: 10 << 20}
	if err := req.CheckCandidate(TaskStylesheet, huge); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("oversized stylesheet should be rejected")
	}
}

func TestCheckIFrameCandidate(t *testing.T) {
	req := DefaultRequirements()
	good := Candidate{
		MIMEType:        "text/html",
		PageTotalBytes:  80 * 1024,
		CacheableImages: 3,
	}
	if err := req.CheckCandidate(TaskIFrame, good); err != nil {
		t.Fatalf("good iframe page rejected: %v", err)
	}
	tooBig := good
	tooBig.PageTotalBytes = 500 * 1024
	if err := req.CheckCandidate(TaskIFrame, tooBig); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("pages over 100KB must be rejected (§5.2)")
	}
	noCache := good
	noCache.CacheableImages = 0
	if err := req.CheckCandidate(TaskIFrame, noCache); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("pages without cacheable images must be rejected (Table 1)")
	}
	media := good
	media.HasLargeMedia = true
	if err := req.CheckCandidate(TaskIFrame, media); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("pages with flash/video must be rejected (§5.2)")
	}
	sideEffects := good
	sideEffects.HasSideEffects = true
	if err := req.CheckCandidate(TaskIFrame, sideEffects); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("pages with side effects must be rejected (Table 1)")
	}
	notHTML := good
	notHTML.MIMEType = "image/png"
	if err := req.CheckCandidate(TaskIFrame, notHTML); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("non-HTML iframe target must be rejected")
	}
}

func TestCheckScriptCandidate(t *testing.T) {
	req := DefaultRequirements()
	nosniff := Candidate{MIMEType: "image/png", SizeBytes: 900, NoSniff: true}
	if err := req.CheckCandidate(TaskScript, nosniff); err != nil {
		t.Fatalf("nosniff target rejected: %v", err)
	}
	sniffable := Candidate{MIMEType: "image/png", SizeBytes: 900, NoSniff: false}
	if err := req.CheckCandidate(TaskScript, sniffable); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("targets without nosniff must be rejected (strict MIME checking)")
	}
	relaxed := req
	relaxed.RequireNoSniff = false
	if err := relaxed.CheckCandidate(TaskScript, sniffable); err != nil {
		t.Fatalf("relaxed requirements should accept: %v", err)
	}
}

func TestCheckUnknownTaskType(t *testing.T) {
	req := DefaultRequirements()
	if err := req.CheckCandidate(TaskType(99), Candidate{}); !errors.Is(err, ErrUnsuitable) {
		t.Fatal("unknown task type should be rejected")
	}
}

func TestSuitableTypes(t *testing.T) {
	req := DefaultRequirements()
	icon := Candidate{MIMEType: "image/x-icon", SizeBytes: 700, NoSniff: true, Cacheable: true}
	chromeTypes := req.SuitableTypes(icon, BrowserChrome)
	if len(chromeTypes) != 2 {
		t.Fatalf("Chrome should get image+script for a nosniff icon, got %v", chromeTypes)
	}
	ffTypes := req.SuitableTypes(icon, BrowserFirefox)
	if len(ffTypes) != 1 || ffTypes[0] != TaskImage {
		t.Fatalf("Firefox should only get the image task, got %v", ffTypes)
	}
	page := Candidate{MIMEType: "text/html", PageTotalBytes: 50 * 1024, CacheableImages: 2}
	pageTypes := req.SuitableTypes(page, BrowserSafari)
	if len(pageTypes) != 1 || pageTypes[0] != TaskIFrame {
		t.Fatalf("small cacheable page should map to iframe task, got %v", pageTypes)
	}
}

func TestLikelySideEffects(t *testing.T) {
	risky := []string{
		"http://shop.example.com/cart/add?id=3",
		"http://example.com/account/logout",
		"http://example.com/forum?action=post",
		"http://example.com/unsubscribe?u=1",
	}
	for _, u := range risky {
		if !LikelySideEffects(u) {
			t.Errorf("%q should be flagged as having side effects", u)
		}
	}
	safe := []string{
		"http://example.com/news/article-17.html",
		"http://example.com/images/logo.png",
		"http://example.com/about/",
	}
	for _, u := range safe {
		if LikelySideEffects(u) {
			t.Errorf("%q should not be flagged", u)
		}
	}
}

func TestTable1Matrix(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table 1 has four rows, got %d", len(rows))
	}
	byType := map[TaskType]MechanismSummary{}
	for _, r := range rows {
		if r.Summary == "" || len(r.Limitations) == 0 {
			t.Fatalf("row %v incomplete", r.Type)
		}
		byType[r.Type] = r
	}
	if !byType[TaskScript].ChromeOnly {
		t.Fatal("script row must be marked Chrome-only")
	}
	if byType[TaskImage].ChromeOnly {
		t.Fatal("image row must not be Chrome-only")
	}
	if byType[TaskIFrame].Feedback != FeedbackTiming {
		t.Fatal("iframe row must use timing feedback")
	}
	if len(byType[TaskIFrame].Limitations) != 3 {
		t.Fatal("iframe row lists three limitations in the paper")
	}
}

func TestDefaultRequirementsMatchPaperThresholds(t *testing.T) {
	req := DefaultRequirements()
	if req.MaxImageBytes != 1024 {
		t.Fatalf("MaxImageBytes=%d, want 1024 (<=1 KB)", req.MaxImageBytes)
	}
	if req.RelaxedImageBytes != 5*1024 {
		t.Fatalf("RelaxedImageBytes=%d, want 5120 (<=5 KB)", req.RelaxedImageBytes)
	}
	if req.MaxPageBytes != 100*1024 {
		t.Fatalf("MaxPageBytes=%d, want 102400 (<=100 KB)", req.MaxPageBytes)
	}
	if !req.RequireCacheableImage || !req.ForbidLargeMedia || !req.RequireNoSniff {
		t.Fatal("paper's conservative defaults should all be enabled")
	}
}
