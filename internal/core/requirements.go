package core

import (
	"errors"
	"fmt"
	"strings"
)

// Requirements captures the per-mechanism constraints of Table 1 and §5.2
// that the Task Generator enforces before a resource may be measured. The
// zero value is not useful; use DefaultRequirements.
type Requirements struct {
	// MaxImageBytes bounds the size of images used by image tasks so that
	// downloading and rendering them does not affect user experience
	// ("Only small images (e.g., <= 1 KB)").
	MaxImageBytes int
	// RelaxedImageBytes is the looser bound (5 KB in the paper's analysis)
	// used when no single-packet image exists on a domain.
	RelaxedImageBytes int
	// MaxPageBytes bounds the total weight of pages loaded in hidden
	// iframes ("Only small pages (e.g., <= 100 KB)").
	MaxPageBytes int
	// RequireCacheableImage requires iframe targets to embed at least one
	// cacheable image to time.
	RequireCacheableImage bool
	// ForbidLargeMedia excludes pages that load flash, video, or audio from
	// iframe tasks (§5.2: "excludes pages that load flash applets, videos,
	// or any other large objects").
	ForbidLargeMedia bool
	// RequireNoSniff requires script-task targets to serve
	// X-Content-Type-Options: nosniff so non-Chrome browsers that
	// accidentally receive the task cannot be tricked into executing
	// non-script content (§4.3.2).
	RequireNoSniff bool
	// MaxStylesheetBytes bounds style-sheet task targets; sheets are
	// "generally small and load quickly".
	MaxStylesheetBytes int
	// MaxSnippetBytes bounds the size of the embed snippet added to origin
	// pages (§6.3: "our prototype adds only 100 bytes to each origin
	// page").
	MaxSnippetBytes int
}

// DefaultRequirements returns the thresholds used in the paper.
func DefaultRequirements() Requirements {
	return Requirements{
		MaxImageBytes:         1024,
		RelaxedImageBytes:     5 * 1024,
		MaxPageBytes:          100 * 1024,
		RequireCacheableImage: true,
		ForbidLargeMedia:      true,
		RequireNoSniff:        true,
		MaxStylesheetBytes:    64 * 1024,
		MaxSnippetBytes:       200,
	}
}

// Candidate describes a resource (or page) being considered for measurement,
// using only attributes the Target Fetcher can observe in a HAR file.
type Candidate struct {
	URL string
	// MIMEType is the served content type.
	MIMEType string
	// SizeBytes is the resource size (for pages, the page's own HTML size).
	SizeBytes int
	// Cacheable reports whether caching headers allow reuse.
	Cacheable bool
	// NoSniff reports whether the response carries nosniff.
	NoSniff bool

	// Page-level attributes, only meaningful for iframe candidates.
	PageTotalBytes  int
	CacheableImages int
	HasLargeMedia   bool
	// HasSideEffects marks pages whose URLs look like they mutate server
	// state (logout links, cart operations); such pages must not be loaded.
	HasSideEffects bool
}

// ErrUnsuitable is wrapped by all rejection reasons from CheckCandidate.
var ErrUnsuitable = errors.New("core: resource unsuitable for task type")

// CheckCandidate reports whether the candidate may be measured with the given
// mechanism under these requirements. A nil error means the candidate is
// acceptable.
func (req Requirements) CheckCandidate(t TaskType, c Candidate) error {
	switch t {
	case TaskImage:
		if !strings.HasPrefix(strings.ToLower(c.MIMEType), "image/") {
			return fmt.Errorf("%w: image task requires an image, got %q", ErrUnsuitable, c.MIMEType)
		}
		limit := req.MaxImageBytes
		if limit <= 0 {
			limit = 1024
		}
		if c.SizeBytes > req.RelaxedImageBytes && req.RelaxedImageBytes > 0 {
			return fmt.Errorf("%w: image is %d bytes, exceeds relaxed bound %d", ErrUnsuitable, c.SizeBytes, req.RelaxedImageBytes)
		}
		return nil
	case TaskStylesheet:
		if !strings.Contains(strings.ToLower(c.MIMEType), "css") {
			return fmt.Errorf("%w: stylesheet task requires text/css, got %q", ErrUnsuitable, c.MIMEType)
		}
		if c.SizeBytes <= 0 {
			return fmt.Errorf("%w: stylesheet task requires a non-empty sheet", ErrUnsuitable)
		}
		if req.MaxStylesheetBytes > 0 && c.SizeBytes > req.MaxStylesheetBytes {
			return fmt.Errorf("%w: stylesheet is %d bytes, exceeds %d", ErrUnsuitable, c.SizeBytes, req.MaxStylesheetBytes)
		}
		return nil
	case TaskIFrame:
		if !strings.Contains(strings.ToLower(c.MIMEType), "html") {
			return fmt.Errorf("%w: iframe task requires an HTML page, got %q", ErrUnsuitable, c.MIMEType)
		}
		if req.MaxPageBytes > 0 && c.PageTotalBytes > req.MaxPageBytes {
			return fmt.Errorf("%w: page loads %d bytes, exceeds %d", ErrUnsuitable, c.PageTotalBytes, req.MaxPageBytes)
		}
		if req.RequireCacheableImage && c.CacheableImages == 0 {
			return fmt.Errorf("%w: page embeds no cacheable images to time", ErrUnsuitable)
		}
		if req.ForbidLargeMedia && c.HasLargeMedia {
			return fmt.Errorf("%w: page embeds large media", ErrUnsuitable)
		}
		if c.HasSideEffects {
			return fmt.Errorf("%w: page has likely server side effects", ErrUnsuitable)
		}
		return nil
	case TaskScript:
		if req.RequireNoSniff && !c.NoSniff {
			return fmt.Errorf("%w: script task requires X-Content-Type-Options: nosniff", ErrUnsuitable)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown task type %v", ErrUnsuitable, t)
	}
}

// PreferredImageBound reports whether the candidate image fits the strict
// single-packet bound (as opposed to merely the relaxed bound).
func (req Requirements) PreferredImageBound(c Candidate) bool {
	limit := req.MaxImageBytes
	if limit <= 0 {
		limit = 1024
	}
	return c.SizeBytes <= limit
}

// SuitableTypes returns every task type that may measure the candidate under
// the requirements, honouring the client's browser family when one is known
// (pass BrowserOther to ignore browser constraints at generation time and
// filter at scheduling time instead).
func (req Requirements) SuitableTypes(c Candidate, family BrowserFamily) []TaskType {
	var out []TaskType
	for _, t := range TaskTypes() {
		if !family.SupportsTask(t) && t == TaskScript {
			continue
		}
		if err := req.CheckCandidate(t, c); err == nil {
			out = append(out, t)
		}
	}
	return out
}

// LikelySideEffects reports whether a URL looks like it changes server state
// and therefore must not be fetched by measurement tasks (§4.2: "measurement
// tasks should try to only test URLs without obvious server side-effects").
func LikelySideEffects(url string) bool {
	lower := strings.ToLower(url)
	for _, marker := range []string{
		"logout", "login", "signin", "signout", "delete", "remove",
		"add-to-cart", "cart/add", "checkout", "purchase", "unsubscribe",
		"vote", "like?", "post?", "submit", "action=",
	} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

// MechanismSummary is one row of Table 1: the mechanism, how it observes
// success, and its limitations.
type MechanismSummary struct {
	Type        TaskType
	Summary     string
	Feedback    Feedback
	Limitations []string
	ChromeOnly  bool
}

// Table1 returns the mechanism matrix exactly as the paper presents it; the
// E1 benchmark validates the running system against this table.
func Table1() []MechanismSummary {
	return []MechanismSummary{
		{
			Type:     TaskImage,
			Summary:  "Render an image. Browser fires onload if successful.",
			Feedback: FeedbackExplicit,
			Limitations: []string{
				"Only small images (e.g., <= 1 KB).",
			},
		},
		{
			Type:     TaskStylesheet,
			Summary:  "Load a style sheet and test its effects.",
			Feedback: FeedbackStyleProbe,
			Limitations: []string{
				"Only non-empty style sheets.",
			},
		},
		{
			Type:     TaskIFrame,
			Summary:  "Load a Web page in an iframe, then load an image embedded on that page; cached images render quickly, implying the page was not filtered.",
			Feedback: FeedbackTiming,
			Limitations: []string{
				"Only pages with cacheable images.",
				"Only small pages (e.g., <= 100 KB).",
				"Only pages without side effects.",
			},
		},
		{
			Type:     TaskScript,
			Summary:  "Load and evaluate a resource as a script. Chrome fires onload iff it fetched the resource with HTTP 200 status.",
			Feedback: FeedbackExplicit,
			Limitations: []string{
				"Only with Chrome.",
				"Only with strict MIME type checking.",
			},
			ChromeOnly: true,
		},
	}
}
