// Package analytics reproduces the pilot-study analysis of §6.2: the paper
// examines one month of Google Analytics data for a professor's home page
// (1,171 visits) to argue that even a modest academic page receives visitors
// from enough countries — including countries with well-known filtering
// policies — and that visitors stay on the page long enough to run
// measurement tasks. Google Analytics data is unavailable, so this package
// generates a synthetic visit log calibrated to the reported demographics and
// provides the analysis that produces the paper's numbers.
package analytics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"encore/internal/core"
	"encore/internal/geo"
	"encore/internal/stats"
)

// Visit is one page view of an Encore-hosting origin page.
type Visit struct {
	Time    time.Time
	Country geo.CountryCode
	Browser core.BrowserFamily
	// DwellSeconds is how long the visitor stayed on the page.
	DwellSeconds float64
	// Automated marks traffic from crawlers and security scanners, which
	// never runs measurement tasks (the paper confirmed "nearly all of the
	// rest to be automated traffic from our campus' security scanner").
	Automated bool
	// RanTask reports whether the visit executed at least one measurement
	// task.
	RanTask bool
}

// PilotConfig parameterizes the synthetic pilot visit log.
type PilotConfig struct {
	Seed uint64
	// Visits is the total page views in the month; the paper saw 1,171.
	Visits int
	// Start is the beginning of the observation month.
	Start time.Time
	// HomeCountry is where most visitors come from (a US university page).
	HomeCountry geo.CountryCode
	// HomeFraction is the fraction of visits from the home country.
	HomeFraction float64
	// AutomatedFraction is the fraction of automated (bot) visits; the
	// paper attributes 1,171-999 ≈ 15% to scanners.
	AutomatedFraction float64
}

// DefaultPilotConfig mirrors the February 2014 pilot.
func DefaultPilotConfig(seed uint64) PilotConfig {
	return PilotConfig{
		Seed:              seed,
		Visits:            1171,
		Start:             time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC),
		HomeCountry:       "US",
		HomeFraction:      0.55,
		AutomatedFraction: 0.15,
	}
}

// GeneratePilot produces a synthetic month of visits matching the configured
// demographics: mostly home-country visitors, a long tail of other countries
// drawn by Internet population, dwell times such that roughly 45% exceed 10
// seconds and 35% exceed a minute.
func GeneratePilot(cfg PilotConfig, registry *geo.Registry) []Visit {
	rng := stats.NewRNG(cfg.Seed)
	if cfg.Visits <= 0 {
		cfg.Visits = 1171
	}
	if cfg.HomeCountry == "" {
		cfg.HomeCountry = "US"
	}
	visits := make([]Visit, 0, cfg.Visits)
	monthSeconds := 28 * 24 * 3600.0
	for i := 0; i < cfg.Visits; i++ {
		country := cfg.HomeCountry
		if !rng.Bool(cfg.HomeFraction) {
			country = registry.SampleCountry(rng)
		}
		automated := rng.Bool(cfg.AutomatedFraction)
		dwell := sampleDwellSeconds(rng)
		if automated {
			dwell = 1 + rng.Float64()*3
		}
		v := Visit{
			Time:         cfg.Start.Add(time.Duration(rng.Float64()*monthSeconds) * time.Second),
			Country:      country,
			Browser:      sampleBrowser(rng),
			DwellSeconds: dwell,
			Automated:    automated,
		}
		// A visit runs a task if it is human and stays long enough for the
		// asynchronous task to start (a couple of seconds).
		v.RanTask = !v.Automated && v.DwellSeconds >= 2
		visits = append(visits, v)
	}
	sort.Slice(visits, func(i, j int) bool { return visits[i].Time.Before(visits[j].Time) })
	return visits
}

// sampleDwellSeconds draws a dwell time whose distribution matches §6.2:
// roughly 45% of visitors stay longer than 10 seconds and 35% longer than a
// minute.
func sampleDwellSeconds(rng *stats.RNG) float64 {
	u := rng.Float64()
	switch {
	case u < 0.55:
		// Bounce or short read: 1-10 seconds.
		return 1 + 9*rng.Float64()
	case u < 0.65:
		// Medium engagement: 10-60 seconds.
		return 10 + 50*rng.Float64()
	default:
		// Long engagement: 1-10 minutes.
		return 60 + 540*rng.Float64()
	}
}

func sampleBrowser(rng *stats.RNG) core.BrowserFamily {
	families := core.BrowserFamilies()
	weights := []float64{0.48, 0.18, 0.16, 0.12, 0.06}
	idx := rng.WeightedChoice(weights)
	if idx < 0 || idx >= len(families) {
		return core.BrowserOther
	}
	return families[idx]
}

// PilotReport holds the §6.2 headline numbers.
type PilotReport struct {
	Visits            int
	HumanVisits       int
	RanTask           int
	Countries         int
	CountriesOver10   int
	ByCountry         map[geo.CountryCode]int
	FilteringFraction float64
	DwellOver10s      float64
	DwellOver60s      float64
}

// Analyze computes the pilot report from a visit log.
func Analyze(visits []Visit, registry *geo.Registry) PilotReport {
	r := PilotReport{ByCountry: make(map[geo.CountryCode]int)}
	filtering := make(map[geo.CountryCode]bool)
	for _, c := range registry.FilteringCountries() {
		filtering[c] = true
	}
	var over10, over60, fromFiltering int
	for _, v := range visits {
		r.Visits++
		r.ByCountry[v.Country]++
		if !v.Automated {
			r.HumanVisits++
		}
		if v.RanTask {
			r.RanTask++
		}
		if v.DwellSeconds > 10 {
			over10++
		}
		if v.DwellSeconds > 60 {
			over60++
		}
		if filtering[v.Country] {
			fromFiltering++
		}
	}
	r.Countries = len(r.ByCountry)
	for _, n := range r.ByCountry {
		if n >= 10 {
			r.CountriesOver10++
		}
	}
	if r.Visits > 0 {
		r.FilteringFraction = float64(fromFiltering) / float64(r.Visits)
		r.DwellOver10s = float64(over10) / float64(r.Visits)
		r.DwellOver60s = float64(over60) / float64(r.Visits)
	}
	return r
}

// String renders the report in the style of §6.2.
func (r PilotReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pilot: %d visits, %d human, %d ran a measurement task\n", r.Visits, r.HumanVisits, r.RanTask)
	fmt.Fprintf(&b, "pilot: %d countries observed, %d with >=10 visitors\n", r.Countries, r.CountriesOver10)
	fmt.Fprintf(&b, "pilot: %.0f%% of visits from countries with well-known filtering policies\n", 100*r.FilteringFraction)
	fmt.Fprintf(&b, "pilot: %.0f%% stayed >10s, %.0f%% stayed >60s\n", 100*r.DwellOver10s, 100*r.DwellOver60s)
	return b.String()
}

// ExpectedMeasurementsPerDay estimates how many measurements a site with the
// given daily visit count would contribute, given the fraction of visitors
// who run at least one task and the average tasks an engaged visitor runs.
func ExpectedMeasurementsPerDay(dailyVisits int, report PilotReport, tasksPerEngagedVisitor float64) float64 {
	if report.Visits == 0 {
		return 0
	}
	taskRate := float64(report.RanTask) / float64(report.Visits)
	return float64(dailyVisits) * taskRate * tasksPerEngagedVisitor
}
