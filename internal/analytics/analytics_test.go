package analytics

import (
	"strings"
	"testing"

	"encore/internal/geo"
)

func TestGeneratePilotShape(t *testing.T) {
	g := geo.NewRegistry(1)
	cfg := DefaultPilotConfig(7)
	visits := GeneratePilot(cfg, g)
	if len(visits) != 1171 {
		t.Fatalf("generated %d visits, want 1171", len(visits))
	}
	for i := 1; i < len(visits); i++ {
		if visits[i].Time.Before(visits[i-1].Time) {
			t.Fatal("visits not sorted by time")
		}
	}
	for _, v := range visits {
		if v.Country == "" || v.DwellSeconds <= 0 {
			t.Fatalf("visit incomplete: %+v", v)
		}
		if v.Automated && v.RanTask {
			t.Fatal("automated visits must not run tasks")
		}
	}
}

func TestGeneratePilotDeterministic(t *testing.T) {
	g := geo.NewRegistry(1)
	a := GeneratePilot(DefaultPilotConfig(5), g)
	b := GeneratePilot(DefaultPilotConfig(5), g)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Country != b[i].Country || a[i].DwellSeconds != b[i].DwellSeconds {
			t.Fatalf("visit %d differs between runs", i)
		}
	}
}

func TestAnalyzeMatchesPaperDemographics(t *testing.T) {
	g := geo.NewRegistry(1)
	visits := GeneratePilot(DefaultPilotConfig(11), g)
	r := Analyze(visits, g)

	if r.Visits != 1171 {
		t.Fatalf("Visits=%d", r.Visits)
	}
	// §6.2: "999 attempted to run a measurement task" — i.e. the large
	// majority; allow a generous band.
	if r.RanTask < 800 || r.RanTask > 1100 {
		t.Fatalf("RanTask=%d, want ~999", r.RanTask)
	}
	// "more than 10 users from 10 other countries"
	if r.CountriesOver10 < 5 {
		t.Fatalf("only %d countries with >=10 visitors", r.CountriesOver10)
	}
	// "16%% of visitors reside in countries with well-known Web filtering
	// policies" — band 8-35%%.
	if r.FilteringFraction < 0.08 || r.FilteringFraction > 0.40 {
		t.Fatalf("FilteringFraction=%.2f, want roughly 0.16", r.FilteringFraction)
	}
	// "45%% of visitors remained on the page for longer than 10 seconds"
	if r.DwellOver10s < 0.35 || r.DwellOver10s > 0.60 {
		t.Fatalf("DwellOver10s=%.2f, want ~0.45", r.DwellOver10s)
	}
	// "35%% of visitors who remained for longer than a minute"
	if r.DwellOver60s < 0.25 || r.DwellOver60s > 0.45 {
		t.Fatalf("DwellOver60s=%.2f, want ~0.35", r.DwellOver60s)
	}
	if r.DwellOver60s > r.DwellOver10s {
		t.Fatal("dwell fractions inconsistent")
	}
	// Most visits come from the home country.
	if r.ByCountry["US"] < r.Visits/3 {
		t.Fatalf("US visits=%d, expected a majority-ish share", r.ByCountry["US"])
	}
	s := r.String()
	if !strings.Contains(s, "pilot:") || !strings.Contains(s, "countries") {
		t.Fatalf("report string malformed: %q", s)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	g := geo.NewRegistry(1)
	r := Analyze(nil, g)
	if r.Visits != 0 || r.FilteringFraction != 0 {
		t.Fatalf("empty analysis should be zero: %+v", r)
	}
}

func TestGeneratePilotDefaults(t *testing.T) {
	g := geo.NewRegistry(1)
	visits := GeneratePilot(PilotConfig{Seed: 3}, g)
	if len(visits) != 1171 {
		t.Fatalf("zero config should default to 1171 visits, got %d", len(visits))
	}
}

func TestExpectedMeasurementsPerDay(t *testing.T) {
	g := geo.NewRegistry(1)
	r := Analyze(GeneratePilot(DefaultPilotConfig(13), g), g)
	got := ExpectedMeasurementsPerDay(1000, r, 1.5)
	if got <= 0 || got > 1500 {
		t.Fatalf("ExpectedMeasurementsPerDay=%v", got)
	}
	if ExpectedMeasurementsPerDay(1000, PilotReport{}, 1.5) != 0 {
		t.Fatal("empty report should yield zero")
	}
}
