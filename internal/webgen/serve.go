package webgen

import (
	"fmt"
	"net/http"
	"strings"
)

// Handler returns an http.Handler that serves one synthetic site's pages and
// resources over real HTTP, with the same headers the network simulator
// assumes (Content-Type, Cache-Control, X-Content-Type-Options). It lets the
// loopback demo deployment (cmd/encore-coordinator, cmd/encore-collector,
// cmd/encore-origin) measure an actual HTTP server: point a measurement task
// at the handler's address and the browser-visible behaviour matches the
// simulated one.
//
// Requests are matched by path only; the handler assumes it is reached via a
// host name (or port) dedicated to the domain, the way the real Web maps one
// virtual host per site.
func (w *Web) Handler(domain string) (http.Handler, error) {
	site, ok := w.Site(domain)
	if !ok {
		return nil, fmt.Errorf("webgen: unknown domain %q", domain)
	}
	return &siteHandler{web: w, site: site}, nil
}

type siteHandler struct {
	web  *Web
	site *Site
}

// ServeHTTP serves pages as HTML documents that embed their resources and
// serves resources with their generated bodies.
func (h *siteHandler) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	url := "http://" + h.site.Domain + r.URL.Path
	if r.URL.Path == "/healthz" {
		fmt.Fprintf(rw, "ok: %s (%d pages)\n", h.site.Domain, len(h.site.Pages))
		return
	}
	if page, ok := h.web.LookupPage(url); ok {
		h.servePage(rw, page)
		return
	}
	if res, ok := h.web.LookupResource(url); ok {
		h.serveResource(rw, res)
		return
	}
	http.NotFound(rw, r)
}

func (h *siteHandler) servePage(rw http.ResponseWriter, page *Page) {
	rw.Header().Set("Content-Type", "text/html; charset=utf-8")
	rw.Header().Set("Cache-Control", "no-cache")
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html>\n<head><title>%s</title>\n", page.URL)
	for _, ru := range page.Resources {
		res, ok := h.web.LookupResource(ru)
		if !ok {
			continue
		}
		switch res.Type {
		case TypeStylesheet:
			fmt.Fprintf(&b, "  <link rel=\"stylesheet\" href=%q>\n", ru)
		case TypeScript:
			fmt.Fprintf(&b, "  <script src=%q></script>\n", ru)
		}
	}
	b.WriteString("</head>\n<body>\n")
	for _, ru := range page.Resources {
		res, ok := h.web.LookupResource(ru)
		if !ok {
			continue
		}
		switch res.Type {
		case TypeImage:
			fmt.Fprintf(&b, "  <img src=%q alt=\"\">\n", ru)
		case TypeMedia:
			fmt.Fprintf(&b, "  <video src=%q></video>\n", ru)
		}
	}
	fmt.Fprintf(&b, "</body>\n</html>\n")
	_, _ = rw.Write([]byte(b.String()))
}

func (h *siteHandler) serveResource(rw http.ResponseWriter, res *Resource) {
	rw.Header().Set("Content-Type", res.MIMEType)
	if res.Cacheable {
		rw.Header().Set("Cache-Control", "public, max-age=86400")
	} else {
		rw.Header().Set("Cache-Control", "no-cache")
	}
	if res.NoSniff {
		rw.Header().Set("X-Content-Type-Options", "nosniff")
	}
	_, _ = rw.Write(h.web.Body(res))
}
