// Package webgen generates a deterministic synthetic Web for the Encore
// reproduction.
//
// The paper's feasibility study (§6.1) crawls 178 potentially-filtered
// domains from a Herdict-curated list, expands them to 6,548 URLs, and
// analyzes the images, style sheets, scripts, and page sizes those URLs load.
// The live Web is unavailable offline, so this package synthesizes a Web with
// the same observable structure: named sites with categories, pages embedding
// resources (possibly cross-origin on CDN domains), realistic size and
// cacheability distributions, and a search index the Pattern Expander can
// scrape. Resource bodies are generated on demand from the URL so the
// testbed's HTTP servers can serve real bytes without storing them.
package webgen

import (
	"fmt"
	"sort"
	"strings"

	"encore/internal/stats"
	"encore/internal/urlpattern"
)

// ResourceType classifies a Web object.
type ResourceType int

const (
	// TypeHTML is a Web page document.
	TypeHTML ResourceType = iota
	// TypeImage is an image (icon, photo, graphic).
	TypeImage
	// TypeStylesheet is a CSS style sheet.
	TypeStylesheet
	// TypeScript is a JavaScript file.
	TypeScript
	// TypeMedia is audio, video, or flash content.
	TypeMedia
	// TypeOther is any other object (fonts, JSON, etc).
	TypeOther
)

// String returns the lower-case name of the resource type.
func (t ResourceType) String() string {
	switch t {
	case TypeHTML:
		return "html"
	case TypeImage:
		return "image"
	case TypeStylesheet:
		return "stylesheet"
	case TypeScript:
		return "script"
	case TypeMedia:
		return "media"
	default:
		return "other"
	}
}

// MIME returns a representative MIME type for the resource type.
func (t ResourceType) MIME() string {
	switch t {
	case TypeHTML:
		return "text/html"
	case TypeImage:
		return "image/png"
	case TypeStylesheet:
		return "text/css"
	case TypeScript:
		return "application/javascript"
	case TypeMedia:
		return "video/mp4"
	default:
		return "application/octet-stream"
	}
}

// Category describes what kind of site a domain hosts; it drives the page
// structure the generator produces.
type Category int

const (
	// CategoryGeneric is an ordinary content site.
	CategoryGeneric Category = iota
	// CategoryNews is an article-heavy news site with many images.
	CategoryNews
	// CategorySocial is a large social-media platform (Facebook, Twitter,
	// YouTube analogues) with many small cacheable icons.
	CategorySocial
	// CategoryHumanRights is a small advocacy site, the archetypal
	// high-value censorship target.
	CategoryHumanRights
	// CategoryBlog is a personal blog or academic homepage.
	CategoryBlog
	// CategoryVideo is a media-heavy streaming site.
	CategoryVideo
	// CategoryCDN hosts shared resources (style sheets, scripts, icons)
	// embedded cross-origin by other sites.
	CategoryCDN
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CategoryNews:
		return "news"
	case CategorySocial:
		return "social"
	case CategoryHumanRights:
		return "human-rights"
	case CategoryBlog:
		return "blog"
	case CategoryVideo:
		return "video"
	case CategoryCDN:
		return "cdn"
	default:
		return "generic"
	}
}

// Resource is one addressable Web object.
type Resource struct {
	URL       string
	Domain    string
	Type      ResourceType
	SizeBytes int
	Cacheable bool
	// NoSniff indicates the server sends X-Content-Type-Options: nosniff.
	NoSniff bool
	// MIMEType is the served content type.
	MIMEType string
}

// Page is a Web page together with the resources it embeds.
type Page struct {
	URL      string
	Domain   string
	HTMLSize int
	// Resources lists the URLs of embedded objects, which may live on the
	// page's own domain or on a cross-origin CDN.
	Resources []string
}

// Site is one Web site (a DNS domain).
type Site struct {
	Domain   string
	Category Category
	Pages    []string
	// FaviconURL is the site's favicon, if it serves one.
	FaviconURL string
}

// Web is the generated synthetic Web.
type Web struct {
	Sites     map[string]*Site
	Pages     map[string]*Page
	Resources map[string]*Resource

	domainOrder []string
}

// Config controls generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed uint64
	// TargetDomains are well-known domains that must exist (measurement
	// targets referenced by name in experiments), mapped to a category.
	TargetDomains map[string]Category
	// GenericDomains is the number of additional filler domains.
	GenericDomains int
	// CDNDomains is the number of shared CDN domains.
	CDNDomains int
	// PagesPerDomain is the mean number of pages per domain.
	PagesPerDomain int
}

// DefaultConfig returns a configuration sized like the paper's feasibility
// study: the high-value targets plus enough filler domains to reach 178
// domains overall, with roughly 40 pages each so pattern expansion to 50 URLs
// saturates for most domains.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:           seed,
		TargetDomains:  HighValueTargets(),
		GenericDomains: 150,
		CDNDomains:     8,
		PagesPerDomain: 40,
	}
}

// HighValueTargets returns the well-known measurement targets used throughout
// the experiments: the three sites the paper actually measured (§7.2) plus a
// handful of archetypal high-value domains standing in for the Herdict list.
func HighValueTargets() map[string]Category {
	return map[string]Category{
		"youtube.com":           CategoryVideo,
		"twitter.com":           CategorySocial,
		"facebook.com":          CategorySocial,
		"wikipedia.org":         CategoryGeneric,
		"bbc.co.uk":             CategoryNews,
		"nytimes.com":           CategoryNews,
		"hrw.org":               CategoryHumanRights,
		"amnesty.org":           CategoryHumanRights,
		"rsf.org":               CategoryHumanRights,
		"freedomhouse.org":      CategoryHumanRights,
		"blogspot.com":          CategoryBlog,
		"wordpress.com":         CategoryBlog,
		"tumblr.com":            CategorySocial,
		"flickr.com":            CategorySocial,
		"vimeo.com":             CategoryVideo,
		"dailymotion.com":       CategoryVideo,
		"citizenlab.ca":         CategoryHumanRights,
		"torproject.org":        CategoryHumanRights,
		"greatfire.org":         CategoryHumanRights,
		"herdict.org":           CategoryHumanRights,
		"persianblog.ir":        CategoryBlog,
		"balatarin.com":         CategoryNews,
		"voanews.com":           CategoryNews,
		"rferl.org":             CategoryNews,
		"aljazeera.com":         CategoryNews,
		"reddit.com":            CategorySocial,
		"instagram.com":         CategorySocial,
		"whatsapp.com":          CategorySocial,
		"telegram.org":          CategorySocial,
		"github.com":            CategoryGeneric,
		"archive.org":           CategoryGeneric,
		"change.org":            CategoryHumanRights,
		"avaaz.org":             CategoryHumanRights,
		"ifex.org":              CategoryHumanRights,
		"article19.org":         CategoryHumanRights,
		"indexoncensorship.org": CategoryHumanRights,
	}
}

// Generate builds a synthetic Web from cfg.
func Generate(cfg Config) *Web {
	rng := stats.NewRNG(cfg.Seed)
	w := &Web{
		Sites:     make(map[string]*Site),
		Pages:     make(map[string]*Page),
		Resources: make(map[string]*Resource),
	}

	// CDN domains first so content sites can reference them.
	var cdns []string
	for i := 0; i < cfg.CDNDomains; i++ {
		name := fmt.Sprintf("cdn%d.example-cdn.net", i+1)
		cdns = append(cdns, name)
		w.addCDNSite(name, rng.Fork())
	}

	// Named target domains in sorted order for determinism.
	var targets []string
	for d := range cfg.TargetDomains {
		targets = append(targets, d)
	}
	sort.Strings(targets)
	for _, d := range targets {
		w.addContentSite(d, cfg.TargetDomains[d], cfg.PagesPerDomain, cdns, rng.Fork())
	}

	// Filler domains.
	for i := 0; i < cfg.GenericDomains; i++ {
		name := fmt.Sprintf("site%03d.example.org", i+1)
		cat := CategoryGeneric
		switch i % 7 {
		case 0:
			cat = CategoryNews
		case 1:
			cat = CategoryBlog
		case 2:
			cat = CategoryHumanRights
		case 3:
			cat = CategoryVideo
		}
		w.addContentSite(name, cat, cfg.PagesPerDomain, cdns, rng.Fork())
	}

	sort.Strings(w.domainOrder)
	return w
}

// addCDNSite creates a CDN domain serving shared small cacheable resources.
func (w *Web) addCDNSite(domain string, rng *stats.RNG) *Site {
	site := &Site{Domain: domain, Category: CategoryCDN}
	w.Sites[domain] = site
	w.domainOrder = append(w.domainOrder, domain)

	// Shared libraries and icons: highly cacheable, various sizes.
	for i := 0; i < 20; i++ {
		u := fmt.Sprintf("http://%s/lib/script-%d.js", domain, i)
		w.Resources[u] = &Resource{
			URL: u, Domain: domain, Type: TypeScript,
			SizeBytes: 2000 + rng.Intn(80000),
			Cacheable: true, NoSniff: rng.Bool(0.5), MIMEType: TypeScript.MIME(),
		}
	}
	for i := 0; i < 10; i++ {
		u := fmt.Sprintf("http://%s/css/style-%d.css", domain, i)
		w.Resources[u] = &Resource{
			URL: u, Domain: domain, Type: TypeStylesheet,
			SizeBytes: 1000 + rng.Intn(30000),
			Cacheable: true, MIMEType: TypeStylesheet.MIME(),
		}
	}
	for i := 0; i < 30; i++ {
		u := fmt.Sprintf("http://%s/icons/icon-%d.png", domain, i)
		w.Resources[u] = &Resource{
			URL: u, Domain: domain, Type: TypeImage,
			SizeBytes: 200 + rng.Intn(1800),
			Cacheable: true, MIMEType: TypeImage.MIME(),
		}
	}
	return site
}

// profile bundles the per-category generation parameters.
type profile struct {
	// imageRich is the probability a page embeds same-origin images at all
	// (Figure 4: ~70% of domains embed at least one image).
	imageRich float64
	// imagesMean is the mean number of images on an image-bearing page.
	imagesMean float64
	// smallImageBias is the probability an image is a small icon (<= 1 KB).
	smallImageBias float64
	// cacheableProb is the probability an embedded image is cacheable.
	cacheableProb float64
	// pageKBMin/pageKBMax bound the page's total size in kilobytes before
	// the heavy tail is applied (Figure 5: roughly even 0-2 MB).
	pageKBMin, pageKBMax int
	// mediaProb is the probability a page embeds large media (video/flash),
	// which disqualifies it from iframe tasks.
	mediaProb float64
	// favicon is the probability the site serves a small favicon.
	favicon float64
}

func profileFor(cat Category) profile {
	switch cat {
	case CategoryNews:
		return profile{imageRich: 0.95, imagesMean: 18, smallImageBias: 0.35, cacheableProb: 0.7, pageKBMin: 300, pageKBMax: 2000, mediaProb: 0.25, favicon: 0.95}
	case CategorySocial:
		return profile{imageRich: 0.95, imagesMean: 25, smallImageBias: 0.6, cacheableProb: 0.8, pageKBMin: 400, pageKBMax: 1800, mediaProb: 0.2, favicon: 1.0}
	case CategoryHumanRights:
		return profile{imageRich: 0.7, imagesMean: 6, smallImageBias: 0.5, cacheableProb: 0.6, pageKBMin: 40, pageKBMax: 600, mediaProb: 0.05, favicon: 0.8}
	case CategoryBlog:
		return profile{imageRich: 0.6, imagesMean: 4, smallImageBias: 0.5, cacheableProb: 0.5, pageKBMin: 20, pageKBMax: 400, mediaProb: 0.05, favicon: 0.7}
	case CategoryVideo:
		return profile{imageRich: 0.9, imagesMean: 12, smallImageBias: 0.4, cacheableProb: 0.7, pageKBMin: 500, pageKBMax: 2500, mediaProb: 0.8, favicon: 1.0}
	case CategoryCDN:
		return profile{}
	default:
		return profile{imageRich: 0.72, imagesMean: 8, smallImageBias: 0.45, cacheableProb: 0.6, pageKBMin: 50, pageKBMax: 1500, mediaProb: 0.12, favicon: 0.85}
	}
}

// addContentSite creates an ordinary content site with pages.
func (w *Web) addContentSite(domain string, cat Category, meanPages int, cdns []string, rng *stats.RNG) *Site {
	site := &Site{Domain: domain, Category: cat}
	w.Sites[domain] = site
	w.domainOrder = append(w.domainOrder, domain)
	prof := profileFor(cat)

	// Favicon.
	if rng.Bool(prof.favicon) {
		u := fmt.Sprintf("http://%s/favicon.ico", domain)
		w.Resources[u] = &Resource{
			URL: u, Domain: domain, Type: TypeImage,
			SizeBytes: 300 + rng.Intn(800),
			Cacheable: true, MIMEType: "image/x-icon",
		}
		site.FaviconURL = u
	}

	// Domains are not all the same size; draw page count around the mean.
	nPages := meanPages/2 + rng.Intn(meanPages+1)
	if nPages < 3 {
		nPages = 3
	}
	// Whether this domain embeds images at all (Figure 4: ~70% do).
	domainHasImages := rng.Bool(prof.imageRich)

	// A pool of site-local shared images (headers, logos) reused across
	// pages; reuse is what makes images cacheable *and* likely to already
	// be cached, which the iframe task relies on.
	var sharedImages []string
	nShared := 2 + rng.Intn(8)
	for i := 0; i < nShared; i++ {
		u := fmt.Sprintf("http://%s/static/shared-%d.png", domain, i)
		small := rng.Bool(prof.smallImageBias)
		size := imageSize(rng, small)
		w.Resources[u] = &Resource{
			URL: u, Domain: domain, Type: TypeImage,
			SizeBytes: size, Cacheable: true, MIMEType: TypeImage.MIME(),
		}
		sharedImages = append(sharedImages, u)
	}

	for p := 0; p < nPages; p++ {
		pageURL := fmt.Sprintf("http://%s/%s/page-%03d.html", domain, sectionName(cat, p), p)
		page := &Page{URL: pageURL, Domain: domain}

		// Total page weight target in bytes (Figure 5 calibration).
		targetKB := prof.pageKBMin
		if prof.pageKBMax > prof.pageKBMin {
			targetKB += rng.Intn(prof.pageKBMax - prof.pageKBMin)
		}
		// Long tail: a few pages are much heavier.
		if rng.Bool(0.08) {
			targetKB *= 2 + rng.Intn(4)
		}
		budget := targetKB * 1024

		page.HTMLSize = 5*1024 + rng.Intn(60*1024)
		budget -= page.HTMLSize

		// Site favicon appears on every page that has one.
		if site.FaviconURL != "" {
			page.Resources = append(page.Resources, site.FaviconURL)
			budget -= w.Resources[site.FaviconURL].SizeBytes
		}

		// Cross-origin CDN embeds (style sheets, scripts, widget icons).
		if len(cdns) > 0 {
			nCDN := rng.Intn(4)
			for i := 0; i < nCDN; i++ {
				cdn := cdns[rng.Intn(len(cdns))]
				u := w.randomCDNResource(cdn, rng)
				if u != "" {
					page.Resources = append(page.Resources, u)
					budget -= w.Resources[u].SizeBytes
				}
			}
		}

		// Same-origin style sheet and script.
		if rng.Bool(0.8) {
			u := fmt.Sprintf("http://%s/css/site-%d.css", domain, rng.Intn(3))
			if _, ok := w.Resources[u]; !ok {
				w.Resources[u] = &Resource{URL: u, Domain: domain, Type: TypeStylesheet,
					SizeBytes: 1500 + rng.Intn(25000), Cacheable: true, MIMEType: TypeStylesheet.MIME()}
			}
			page.Resources = append(page.Resources, u)
			budget -= w.Resources[u].SizeBytes
		}
		if rng.Bool(0.7) {
			u := fmt.Sprintf("http://%s/js/app-%d.js", domain, rng.Intn(3))
			if _, ok := w.Resources[u]; !ok {
				w.Resources[u] = &Resource{URL: u, Domain: domain, Type: TypeScript,
					SizeBytes: 4000 + rng.Intn(90000), Cacheable: true, NoSniff: rng.Bool(0.4), MIMEType: TypeScript.MIME()}
			}
			page.Resources = append(page.Resources, u)
			budget -= w.Resources[u].SizeBytes
		}

		// Large media, which disqualifies the page from iframe tasks.
		if rng.Bool(prof.mediaProb) {
			u := fmt.Sprintf("http://%s/media/clip-%03d.mp4", domain, p)
			size := 200*1024 + rng.Intn(3*1024*1024)
			w.Resources[u] = &Resource{URL: u, Domain: domain, Type: TypeMedia,
				SizeBytes: size, Cacheable: false, MIMEType: TypeMedia.MIME()}
			page.Resources = append(page.Resources, u)
			budget -= size
		}

		// Images: a couple of shared (cacheable, reused) images plus
		// page-specific photos until the size budget runs out.
		if domainHasImages {
			nImages := 1 + rng.Poisson(prof.imagesMean)
			for i := 0; i < nImages; i++ {
				if i < 3 && len(sharedImages) > 0 && rng.Bool(0.7) {
					u := sharedImages[rng.Intn(len(sharedImages))]
					page.Resources = append(page.Resources, u)
					budget -= w.Resources[u].SizeBytes
					continue
				}
				small := rng.Bool(prof.smallImageBias)
				size := imageSize(rng, small)
				if budget-size < 0 && i > 0 {
					break
				}
				u := fmt.Sprintf("http://%s/images/p%03d-img%02d.jpg", domain, p, i)
				w.Resources[u] = &Resource{URL: u, Domain: domain, Type: TypeImage,
					SizeBytes: size, Cacheable: rng.Bool(prof.cacheableProb), MIMEType: "image/jpeg"}
				page.Resources = append(page.Resources, u)
				budget -= size
			}
		}

		// Register the page itself as an HTML resource so URL lookups and
		// the testbed's HTTP servers can serve it uniformly.
		w.Resources[pageURL] = &Resource{URL: pageURL, Domain: domain, Type: TypeHTML,
			SizeBytes: page.HTMLSize, Cacheable: false, MIMEType: TypeHTML.MIME()}
		w.Pages[pageURL] = page
		site.Pages = append(site.Pages, pageURL)
	}

	// Root page aliases the first section page so "http://domain/" resolves.
	rootURL := fmt.Sprintf("http://%s/", domain)
	if len(site.Pages) > 0 {
		first := w.Pages[site.Pages[0]]
		root := &Page{URL: rootURL, Domain: domain, HTMLSize: first.HTMLSize, Resources: first.Resources}
		w.Pages[rootURL] = root
		w.Resources[rootURL] = &Resource{URL: rootURL, Domain: domain, Type: TypeHTML,
			SizeBytes: root.HTMLSize, Cacheable: false, MIMEType: TypeHTML.MIME()}
		site.Pages = append([]string{rootURL}, site.Pages...)
	}
	return site
}

// randomCDNResource picks a random resource hosted on the given CDN domain.
func (w *Web) randomCDNResource(cdn string, rng *stats.RNG) string {
	site, ok := w.Sites[cdn]
	if !ok {
		return ""
	}
	_ = site
	// CDN resources follow a fixed naming scheme; choose among them.
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("http://%s/lib/script-%d.js", cdn, rng.Intn(20))
	case 1:
		return fmt.Sprintf("http://%s/css/style-%d.css", cdn, rng.Intn(10))
	default:
		return fmt.Sprintf("http://%s/icons/icon-%d.png", cdn, rng.Intn(30))
	}
}

// imageSize draws an image size: small icons fit in a single packet, photos
// follow a heavier distribution.
func imageSize(rng *stats.RNG, small bool) int {
	if small {
		return 200 + rng.Intn(850) // <= ~1 KB
	}
	switch rng.Intn(3) {
	case 0:
		return 1200 + rng.Intn(4000) // 1-5 KB
	case 1:
		return 5*1024 + rng.Intn(45*1024) // 5-50 KB
	default:
		return 50*1024 + rng.Intn(350*1024) // 50-400 KB
	}
}

func sectionName(cat Category, p int) string {
	sections := map[Category][]string{
		CategoryNews:        {"world", "politics", "business", "tech"},
		CategorySocial:      {"profile", "groups", "photos", "events"},
		CategoryHumanRights: {"reports", "campaigns", "news", "about"},
		CategoryBlog:        {"posts", "archive", "about"},
		CategoryVideo:       {"watch", "channels", "trending"},
		CategoryGeneric:     {"articles", "pages", "docs"},
	}
	s, ok := sections[cat]
	if !ok || len(s) == 0 {
		s = []string{"pages"}
	}
	return s[p%len(s)]
}

// Domains returns all domain names in deterministic (sorted) order.
func (w *Web) Domains() []string {
	return append([]string(nil), w.domainOrder...)
}

// ContentDomains returns the domains that host pages (excluding CDN-only
// domains), sorted.
func (w *Web) ContentDomains() []string {
	var out []string
	for _, d := range w.domainOrder {
		if w.Sites[d].Category != CategoryCDN {
			out = append(out, d)
		}
	}
	return out
}

// Site returns the site for a domain, if present.
func (w *Web) Site(domain string) (*Site, bool) {
	s, ok := w.Sites[urlpattern.NormalizeHost(domain)]
	return s, ok
}

// LookupResource resolves a URL to its resource, if it exists.
func (w *Web) LookupResource(url string) (*Resource, bool) {
	r, ok := w.Resources[url]
	return r, ok
}

// LookupPage resolves a URL to its page, if the URL is a page.
func (w *Web) LookupPage(url string) (*Page, bool) {
	p, ok := w.Pages[url]
	return p, ok
}

// Search returns up to limit page URLs matching the pattern, emulating the
// "site:" search-engine scraping the Pattern Expander performs (§5.2). The
// result order is deterministic.
func (w *Web) Search(p urlpattern.Pattern, limit int) []string {
	if limit <= 0 {
		return nil
	}
	var out []string
	// Fast path: domain and prefix patterns only need the one site.
	if site, ok := w.Sites[p.Domain]; ok {
		for _, u := range site.Pages {
			if p.Matches(u) {
				out = append(out, u)
				if len(out) >= limit {
					return out
				}
			}
		}
		return out
	}
	// Fallback: scan everything (e.g. a pattern for a subdomain).
	for _, d := range w.domainOrder {
		for _, u := range w.Sites[d].Pages {
			if p.Matches(u) {
				out = append(out, u)
				if len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// Body deterministically generates the byte content for a resource. The
// bytes depend only on the URL and declared size, so repeated calls (and
// different server processes) serve identical content.
func (w *Web) Body(r *Resource) []byte {
	if r == nil || r.SizeBytes <= 0 {
		return nil
	}
	body := make([]byte, r.SizeBytes)
	// Seed a tiny generator from the URL so content differs across URLs.
	var h uint64 = 1469598103934665603
	for i := 0; i < len(r.URL); i++ {
		h ^= uint64(r.URL[i])
		h *= 1099511628211
	}
	rng := stats.NewRNG(h)
	switch r.Type {
	case TypeHTML:
		copy(body, []byte("<!DOCTYPE html><html><head><title>"+r.URL+"</title></head><body>"))
	case TypeStylesheet:
		copy(body, []byte("p { color: rgb(0, 0, 255); } /* "+r.URL+" */ "))
	case TypeScript:
		copy(body, []byte("/* "+r.URL+" */ (function(){var x=1;})();"))
	case TypeImage:
		copy(body, []byte{0x89, 'P', 'N', 'G', 0x0d, 0x0a, 0x1a, 0x0a})
	}
	for i := 0; i < len(body); i++ {
		if body[i] == 0 {
			body[i] = byte('a' + rng.Intn(26))
		}
	}
	return body
}

// PageWeight returns the total bytes a browser downloads to render the page:
// the HTML plus every embedded resource (the Figure 5 metric).
func (w *Web) PageWeight(p *Page) int {
	total := p.HTMLSize
	for _, u := range p.Resources {
		if r, ok := w.Resources[u]; ok {
			total += r.SizeBytes
		}
	}
	return total
}

// Stats summarizes the generated Web; used in logs and sanity tests.
type Stats struct {
	Domains   int
	Pages     int
	Resources int
	Images    int
}

// Stats computes summary counts.
func (w *Web) Stats() Stats {
	s := Stats{Domains: len(w.Sites), Pages: len(w.Pages), Resources: len(w.Resources)}
	for _, r := range w.Resources {
		if r.Type == TypeImage {
			s.Images++
		}
	}
	return s
}

// DescribeSite renders a short human-readable description of a site.
func (w *Web) DescribeSite(domain string) string {
	site, ok := w.Sites[domain]
	if !ok {
		return fmt.Sprintf("%s: unknown", domain)
	}
	return fmt.Sprintf("%s: category=%s pages=%d favicon=%v",
		domain, site.Category, len(site.Pages), site.FaviconURL != "")
}

// FaviconOf returns the favicon resource of a domain, if the site serves one.
func (w *Web) FaviconOf(domain string) (*Resource, bool) {
	site, ok := w.Sites[urlpattern.NormalizeHost(domain)]
	if !ok || site.FaviconURL == "" {
		return nil, false
	}
	r, ok := w.Resources[site.FaviconURL]
	return r, ok
}

// ResourcesOnDomain returns all resources hosted on a domain, sorted by URL.
func (w *Web) ResourcesOnDomain(domain string) []*Resource {
	var out []*Resource
	for _, r := range w.Resources {
		if r.Domain == domain {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// SmallImagesOnDomain returns image resources on the domain no larger than
// maxBytes, sorted by URL. The Task Generator uses this to pick image-task
// candidates (§4.3.1).
func (w *Web) SmallImagesOnDomain(domain string, maxBytes int) []*Resource {
	var out []*Resource
	for _, r := range w.ResourcesOnDomain(domain) {
		if r.Type == TypeImage && r.SizeBytes <= maxBytes {
			out = append(out, r)
		}
	}
	return out
}

// String renders one line per domain; useful for debugging experiment setup.
func (w *Web) String() string {
	var b strings.Builder
	for _, d := range w.domainOrder {
		b.WriteString(w.DescribeSite(d))
		b.WriteByte('\n')
	}
	return b.String()
}
