package webgen

import (
	"testing"
	"testing/quick"

	"encore/internal/urlpattern"
)

func smallConfig(seed uint64) Config {
	return Config{
		Seed:           seed,
		TargetDomains:  HighValueTargets(),
		GenericDomains: 20,
		CDNDomains:     3,
		PagesPerDomain: 15,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig(1))
	b := Generate(smallConfig(1))
	if a.Stats() != b.Stats() {
		t.Fatalf("same seed produced different stats: %+v vs %+v", a.Stats(), b.Stats())
	}
	for _, d := range a.Domains() {
		sa, sb := a.Sites[d], b.Sites[d]
		if sb == nil || len(sa.Pages) != len(sb.Pages) {
			t.Fatalf("domain %s differs between runs", d)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := Generate(smallConfig(1))
	b := Generate(smallConfig(2))
	if a.Stats() == b.Stats() {
		t.Fatal("different seeds produced identical webs (suspicious)")
	}
}

func TestTargetDomainsPresent(t *testing.T) {
	w := Generate(smallConfig(3))
	for _, d := range []string{"youtube.com", "twitter.com", "facebook.com", "hrw.org"} {
		site, ok := w.Site(d)
		if !ok {
			t.Fatalf("target domain %s missing", d)
		}
		if len(site.Pages) == 0 {
			t.Fatalf("target domain %s has no pages", d)
		}
	}
}

func TestRootPageExists(t *testing.T) {
	w := Generate(smallConfig(4))
	for _, d := range []string{"youtube.com", "facebook.com"} {
		root := "http://" + d + "/"
		if _, ok := w.LookupPage(root); !ok {
			t.Fatalf("root page for %s missing", d)
		}
		if _, ok := w.LookupResource(root); !ok {
			t.Fatalf("root resource for %s missing", d)
		}
	}
}

func TestPagesHaveConsistentResources(t *testing.T) {
	w := Generate(smallConfig(5))
	for url, page := range w.Pages {
		if page.URL != url {
			t.Fatalf("page key %q != page.URL %q", url, page.URL)
		}
		for _, ru := range page.Resources {
			if _, ok := w.Resources[ru]; !ok {
				t.Fatalf("page %s references missing resource %s", url, ru)
			}
		}
		if page.HTMLSize <= 0 {
			t.Fatalf("page %s has non-positive HTML size", url)
		}
	}
}

func TestResourceFieldsSane(t *testing.T) {
	w := Generate(smallConfig(6))
	for url, r := range w.Resources {
		if r.URL != url {
			t.Fatalf("resource key mismatch %q vs %q", url, r.URL)
		}
		if r.SizeBytes <= 0 {
			t.Fatalf("resource %s has non-positive size", url)
		}
		if r.MIMEType == "" {
			t.Fatalf("resource %s missing MIME type", url)
		}
		if r.Domain == "" {
			t.Fatalf("resource %s missing domain", url)
		}
	}
}

func TestMostSitesServeFavicons(t *testing.T) {
	w := Generate(DefaultConfig(7))
	content := w.ContentDomains()
	withFavicon := 0
	for _, d := range content {
		if _, ok := w.FaviconOf(d); ok {
			withFavicon++
		}
	}
	frac := float64(withFavicon) / float64(len(content))
	if frac < 0.6 {
		t.Fatalf("only %.2f of sites serve favicons; Figure 4 relies on small images being common", frac)
	}
}

func TestImageRichnessMatchesFigure4(t *testing.T) {
	w := Generate(DefaultConfig(8))
	content := w.ContentDomains()
	withImages := 0
	withSmallImages := 0
	for _, d := range content {
		imgs := 0
		small := 0
		for _, r := range w.ResourcesOnDomain(d) {
			if r.Type == TypeImage {
				imgs++
				if r.SizeBytes <= 1024 {
					small++
				}
			}
		}
		if imgs > 0 {
			withImages++
		}
		if small > 0 {
			withSmallImages++
		}
	}
	fracImages := float64(withImages) / float64(len(content))
	fracSmall := float64(withSmallImages) / float64(len(content))
	// Figure 4: ~70% of domains embed at least one image; over 60% host
	// single-packet images. Allow generous tolerance.
	if fracImages < 0.55 || fracImages > 1.0 {
		t.Fatalf("fraction of domains with images = %.2f, want roughly 0.7", fracImages)
	}
	if fracSmall < 0.5 {
		t.Fatalf("fraction of domains with <=1KB images = %.2f, want > 0.5", fracSmall)
	}
}

func TestPageWeightDistributionMatchesFigure5(t *testing.T) {
	w := Generate(DefaultConfig(9))
	over500KB := 0
	total := 0
	for _, p := range w.Pages {
		weight := w.PageWeight(p)
		if weight <= 0 {
			t.Fatalf("page %s has non-positive weight", p.URL)
		}
		total++
		if weight >= 500*1024 {
			over500KB++
		}
	}
	frac := float64(over500KB) / float64(total)
	// Figure 5: over half of pages load at least half a megabyte.
	if frac < 0.35 || frac > 0.9 {
		t.Fatalf("fraction of pages over 500KB = %.2f, want roughly 0.5-0.6", frac)
	}
}

func TestSearchDomainPattern(t *testing.T) {
	w := Generate(smallConfig(10))
	p := urlpattern.MustParse("youtube.com")
	results := w.Search(p, 50)
	if len(results) == 0 {
		t.Fatal("search returned no results for youtube.com")
	}
	if len(results) > 50 {
		t.Fatalf("search returned %d results, limit 50", len(results))
	}
	for _, u := range results {
		if !p.Matches(u) {
			t.Fatalf("search result %q does not match pattern", u)
		}
	}
}

func TestSearchRespectsLimit(t *testing.T) {
	w := Generate(smallConfig(11))
	p := urlpattern.MustParse("facebook.com")
	if got := w.Search(p, 3); len(got) > 3 {
		t.Fatalf("limit ignored: %d results", len(got))
	}
	if got := w.Search(p, 0); got != nil {
		t.Fatal("zero limit should return nil")
	}
}

func TestSearchUnknownDomain(t *testing.T) {
	w := Generate(smallConfig(12))
	p := urlpattern.MustParse("no-such-domain-xyz.com")
	if got := w.Search(p, 10); len(got) != 0 {
		t.Fatalf("unknown domain returned %d results", len(got))
	}
}

func TestBodyDeterministicAndSized(t *testing.T) {
	w := Generate(smallConfig(13))
	fav, ok := w.FaviconOf("facebook.com")
	if !ok {
		t.Skip("facebook.com has no favicon in this seed")
	}
	b1 := w.Body(fav)
	b2 := w.Body(fav)
	if len(b1) != fav.SizeBytes {
		t.Fatalf("body length %d != declared size %d", len(b1), fav.SizeBytes)
	}
	if string(b1) != string(b2) {
		t.Fatal("body generation is not deterministic")
	}
	if w.Body(nil) != nil {
		t.Fatal("nil resource should yield nil body")
	}
}

func TestBodyOfStylesheetAppliesBlueRule(t *testing.T) {
	w := Generate(smallConfig(14))
	var css *Resource
	for _, r := range w.Resources {
		if r.Type == TypeStylesheet {
			css = r
			break
		}
	}
	if css == nil {
		t.Fatal("no stylesheet generated")
	}
	body := string(w.Body(css))
	if len(body) < 10 || body[:1] != "p" {
		t.Fatalf("stylesheet body does not start with the probe rule: %q", body[:20])
	}
}

func TestSmallImagesOnDomain(t *testing.T) {
	w := Generate(DefaultConfig(15))
	imgs := w.SmallImagesOnDomain("facebook.com", 1024)
	for _, r := range imgs {
		if r.Type != TypeImage || r.SizeBytes > 1024 {
			t.Fatalf("SmallImagesOnDomain returned wrong resource %+v", r)
		}
	}
}

func TestCDNResourcesAreCrossOriginTargets(t *testing.T) {
	w := Generate(smallConfig(16))
	// At least some pages should embed resources from a different domain.
	crossOrigin := 0
	for _, p := range w.Pages {
		for _, ru := range p.Resources {
			if r := w.Resources[ru]; r != nil && r.Domain != p.Domain {
				crossOrigin++
			}
		}
	}
	if crossOrigin == 0 {
		t.Fatal("no cross-origin embeds generated; CDN wiring is broken")
	}
}

func TestContentDomainsExcludesCDNs(t *testing.T) {
	w := Generate(smallConfig(17))
	for _, d := range w.ContentDomains() {
		if w.Sites[d].Category == CategoryCDN {
			t.Fatalf("ContentDomains returned CDN domain %s", d)
		}
	}
	if len(w.ContentDomains()) >= len(w.Domains()) {
		t.Fatal("expected some CDN domains to be excluded")
	}
}

func TestDescribeAndString(t *testing.T) {
	w := Generate(smallConfig(18))
	if w.DescribeSite("nonexistent.example") == "" {
		t.Fatal("DescribeSite should render unknown domains")
	}
	if len(w.String()) == 0 {
		t.Fatal("String should render something")
	}
}

func TestResourceTypeStrings(t *testing.T) {
	if TypeImage.String() != "image" || TypeHTML.String() != "html" || TypeMedia.MIME() == "" {
		t.Fatal("resource type metadata broken")
	}
	if ResourceType(99).String() != "other" {
		t.Fatal("unknown type should map to other")
	}
}

func TestQuickSearchResultsMatchPattern(t *testing.T) {
	w := Generate(smallConfig(19))
	domains := w.ContentDomains()
	f := func(idx uint16, limit uint8) bool {
		d := domains[int(idx)%len(domains)]
		p, err := urlpattern.Domain(d)
		if err != nil {
			return false
		}
		lim := int(limit%20) + 1
		results := w.Search(p, lim)
		if len(results) > lim {
			return false
		}
		for _, u := range results {
			if !p.Matches(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
