package webgen

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerUnknownDomain(t *testing.T) {
	w := Generate(smallConfig(30))
	if _, err := w.Handler("no-such-domain.example"); err == nil {
		t.Fatal("expected error for unknown domain")
	}
}

func TestHandlerServesPagesAndResources(t *testing.T) {
	w := Generate(smallConfig(31))
	h, err := w.Handler("bbc.co.uk")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	site, _ := w.Site("bbc.co.uk")
	// Page paths must serve HTML that references the page's embedded
	// resources.
	pageURL := site.Pages[1]
	path := strings.TrimPrefix(pageURL, "http://bbc.co.uk")
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("page status=%d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("page content type=%q", ct)
	}
	page, _ := w.LookupPage(pageURL)
	if len(page.Resources) > 0 && !strings.Contains(string(body), "src=") && !strings.Contains(string(body), "href=") {
		t.Fatalf("page HTML does not reference its resources:\n%s", body)
	}

	// Resource paths must serve the declared size, MIME type, and caching
	// headers.
	fav, ok := w.FaviconOf("bbc.co.uk")
	if !ok {
		t.Skip("no favicon in this seed")
	}
	favPath := strings.TrimPrefix(fav.URL, "http://bbc.co.uk")
	resp, err = http.Get(srv.URL + favPath)
	if err != nil {
		t.Fatal(err)
	}
	favBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(favBody) != fav.SizeBytes {
		t.Fatalf("favicon body %d bytes, declared %d", len(favBody), fav.SizeBytes)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "image/") {
		t.Fatalf("favicon content type=%q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(resp.Header.Get("Cache-Control"), "max-age") {
		t.Fatal("cacheable favicon missing max-age")
	}

	// Unknown paths 404; healthz responds.
	resp, _ = http.Get(srv.URL + "/definitely/not/there")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing path status=%d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/healthz")
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(hb), "bbc.co.uk") {
		t.Fatalf("healthz=%q", hb)
	}
}

func TestHandlerNoSniffHeader(t *testing.T) {
	w := Generate(smallConfig(32))
	// Find a nosniff script on some content domain.
	var target *Resource
	var domain string
	for _, d := range w.ContentDomains() {
		for _, r := range w.ResourcesOnDomain(d) {
			if r.Type == TypeScript && r.NoSniff {
				target = r
				domain = d
				break
			}
		}
		if target != nil {
			break
		}
	}
	if target == nil {
		t.Skip("no nosniff script generated in this seed")
	}
	h, err := w.Handler(domain)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	path := strings.TrimPrefix(target.URL, "http://"+domain)
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Content-Type-Options") != "nosniff" {
		t.Fatal("nosniff header not served")
	}
}
