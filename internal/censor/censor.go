// Package censor models the adversary from the paper's threat model (§3.1):
// a national or ISP-level Web filter that can reject, block, or modify any
// stage of a Web connection for clients inside its region, driven by a
// blacklist of domains, URLs, and keywords.
//
// The engine never exposes internal censor state to measurement code. It
// produces a Decision describing what a client in the region would observe
// when fetching a URL: whether and at which protocol stage the connection is
// disturbed, and what the observable symptom is (NXDOMAIN, a bogus DNS
// answer, a TCP reset, a silent timeout, a block page, or severe throttling).
// The network simulator translates Decisions into fetch outcomes.
package censor

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"encore/internal/geo"
	"encore/internal/urlpattern"
)

// Mechanism enumerates the filtering mechanisms the testbed emulates (§7.1
// describes "seven varieties of DNS, IP, and HTTP filtering").
type Mechanism int

const (
	// MechanismNone means the request is not filtered.
	MechanismNone Mechanism = iota
	// MechanismDNSNXDOMAIN makes the resolver deny the name exists.
	MechanismDNSNXDOMAIN
	// MechanismDNSRedirect answers DNS queries with an address the censor
	// controls (often a block-page server or a black-hole address).
	MechanismDNSRedirect
	// MechanismTCPReset injects RST packets when a connection is attempted.
	MechanismTCPReset
	// MechanismPacketDrop silently drops packets so connections time out.
	MechanismPacketDrop
	// MechanismHTTPBlockPage intercepts the HTTP exchange and returns a
	// block page instead of the requested content.
	MechanismHTTPBlockPage
	// MechanismHTTPDrop drops the HTTP request or response after the TCP
	// handshake completes, so the fetch times out mid-transfer.
	MechanismHTTPDrop
	// MechanismThrottle degrades the connection so severely that most
	// fetches exceed client patience.
	MechanismThrottle
)

// Mechanisms lists every concrete filtering mechanism (excluding
// MechanismNone), in a stable order. The testbed instantiates one
// configuration per entry.
func Mechanisms() []Mechanism {
	return []Mechanism{
		MechanismDNSNXDOMAIN,
		MechanismDNSRedirect,
		MechanismTCPReset,
		MechanismPacketDrop,
		MechanismHTTPBlockPage,
		MechanismHTTPDrop,
		MechanismThrottle,
	}
}

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case MechanismNone:
		return "none"
	case MechanismDNSNXDOMAIN:
		return "dns-nxdomain"
	case MechanismDNSRedirect:
		return "dns-redirect"
	case MechanismTCPReset:
		return "tcp-reset"
	case MechanismPacketDrop:
		return "packet-drop"
	case MechanismHTTPBlockPage:
		return "http-blockpage"
	case MechanismHTTPDrop:
		return "http-drop"
	case MechanismThrottle:
		return "throttle"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Stage identifies where in the connection lifecycle filtering manifests
// (§3.1: DNS lookup, TCP connection establishment, or the HTTP exchange).
type Stage int

const (
	// StageNone means no filtering.
	StageNone Stage = iota
	// StageDNS filtering manifests during name resolution.
	StageDNS
	// StageTCP filtering manifests during connection establishment.
	StageTCP
	// StageHTTP filtering manifests during the HTTP request/response.
	StageHTTP
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageNone:
		return "none"
	case StageDNS:
		return "dns"
	case StageTCP:
		return "tcp"
	case StageHTTP:
		return "http"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// StageOf returns the protocol stage at which a mechanism operates.
func StageOf(m Mechanism) Stage {
	switch m {
	case MechanismDNSNXDOMAIN, MechanismDNSRedirect:
		return StageDNS
	case MechanismTCPReset, MechanismPacketDrop:
		return StageTCP
	case MechanismHTTPBlockPage, MechanismHTTPDrop, MechanismThrottle:
		return StageHTTP
	case MechanismNone:
		return StageNone
	default:
		return StageNone
	}
}

// Rule is one blacklist entry: a URL pattern (domain, prefix, or exact URL)
// filtered with a particular mechanism.
type Rule struct {
	Pattern   urlpattern.Pattern
	Mechanism Mechanism
	// Note documents why the rule exists (mirrors block-list provenance).
	Note string
}

// KeywordRule filters any URL containing the keyword, emulating
// keyword-based filtering such as the Great Firewall's URL keyword resets.
type KeywordRule struct {
	Keyword   string
	Mechanism Mechanism
}

// Policy is the complete filtering policy of one region.
type Policy struct {
	Region geo.CountryCode
	Rules  []Rule
	// KeywordRules apply when no pattern rule matches.
	KeywordRules []KeywordRule
	// BlockMeasurementInfra, when set, additionally filters access to the
	// named Encore infrastructure domains (coordination/collection
	// servers), modelling the adversary attacking the platform itself
	// (§3.1 aspect 2, §8).
	BlockMeasurementInfra []string
	// InfraMechanism is the mechanism used against measurement
	// infrastructure; defaults to DNS NXDOMAIN when unset.
	InfraMechanism Mechanism
	// ThrottleDelayMillis overrides the extra delay MechanismThrottle rules
	// inject (default 30 000 ms). Adversarial throttling-ramp scenarios
	// install successively harsher policies to model a region squeezing
	// bandwidth over a campaign.
	ThrottleDelayMillis float64
	// AllowMeasurementTraffic, when true, models the distorting adversary
	// (§3.1 aspect 3): requests that carry measurement markers are allowed
	// through even though ordinary user access to the same URL is filtered.
	AllowMeasurementTraffic bool
}

// AddDomain appends a domain-filtering rule; it panics on an invalid domain
// (policies are assembled from static configuration).
func (p *Policy) AddDomain(domain string, m Mechanism, note string) {
	pat, err := urlpattern.Domain(domain)
	if err != nil {
		panic(fmt.Sprintf("censor: invalid domain %q: %v", domain, err))
	}
	p.Rules = append(p.Rules, Rule{Pattern: pat, Mechanism: m, Note: note})
}

// AddURL appends an exact-URL rule.
func (p *Policy) AddURL(url string, m Mechanism, note string) error {
	pat, err := urlpattern.Exact(url)
	if err != nil {
		return err
	}
	p.Rules = append(p.Rules, Rule{Pattern: pat, Mechanism: m, Note: note})
	return nil
}

// AddPrefix appends a URL-prefix rule.
func (p *Policy) AddPrefix(prefix string, m Mechanism, note string) error {
	pat, err := urlpattern.Prefix(prefix)
	if err != nil {
		return err
	}
	p.Rules = append(p.Rules, Rule{Pattern: pat, Mechanism: m, Note: note})
	return nil
}

// AddKeyword appends a keyword rule.
func (p *Policy) AddKeyword(keyword string, m Mechanism) {
	p.KeywordRules = append(p.KeywordRules, KeywordRule{Keyword: strings.ToLower(keyword), Mechanism: m})
}

// Decision describes what the censor does to one fetch.
type Decision struct {
	Filtered  bool
	Mechanism Mechanism
	Stage     Stage
	// MatchedRule describes which rule fired, for reporting and tests.
	MatchedRule string
	// ExtraDelayMillis is added latency for throttling mechanisms.
	ExtraDelayMillis float64
	// BlockPage indicates the client receives substituted content rather
	// than a connection error.
	BlockPage bool
}

// Request carries the attributes of a fetch the censor can observe on the
// wire.
type Request struct {
	Region geo.CountryCode
	URL    string
	// MeasurementMarker indicates the request is identifiable as Encore
	// measurement traffic (e.g. by Referer or a recognizable task URL).
	// Only consulted when a policy sets AllowMeasurementTraffic.
	MeasurementMarker bool
}

// GlobalRegion is a pseudo-region whose policy applies to clients everywhere,
// regardless of their own region's policy. The censorship testbed (§7.1) uses
// it to emulate filtering for every client that measures testbed resources.
const GlobalRegion geo.CountryCode = "*"

// Engine evaluates fetches against per-region policies. The zero value is an
// engine with no policies (nothing filtered). Policy installation and
// evaluation are safe to interleave from different goroutines — the chaos
// tier flips a region's policy mid-campaign (a DNS-poisoning switch, a
// throttling ramp) while simulated clients keep fetching — but a *Policy
// handed to SetPolicy must not be mutated afterwards: replace it with a
// fresh Policy instead.
type Engine struct {
	mu       sync.RWMutex
	policies map[geo.CountryCode]*Policy
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{policies: make(map[geo.CountryCode]*Policy)}
}

// SetPolicy installs (or replaces) the policy for a region.
func (e *Engine) SetPolicy(p *Policy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.policies == nil {
		e.policies = make(map[geo.CountryCode]*Policy)
	}
	e.policies[p.Region] = p
}

// RemovePolicy uninstalls a region's policy, if any.
func (e *Engine) RemovePolicy(region geo.CountryCode) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.policies, region)
}

// Policy returns the policy for a region, if any. Treat the returned policy
// as immutable; install changes with SetPolicy.
func (e *Engine) Policy(region geo.CountryCode) (*Policy, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, ok := e.policies[region]
	return p, ok
}

// Regions returns the regions that have policies installed, sorted.
func (e *Engine) Regions() []geo.CountryCode {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []geo.CountryCode
	for r := range e.policies {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Evaluate decides what happens to a fetch. Requests from regions without a
// policy (and outside any global-policy rule) are never filtered. The
// client's regional policy is consulted first, then the global policy.
func (e *Engine) Evaluate(req Request) Decision {
	e.mu.RLock()
	regional := e.policies[req.Region]
	global := e.policies[GlobalRegion]
	e.mu.RUnlock()
	if regional != nil {
		if d := evaluatePolicy(regional, req); d.Filtered {
			return d
		}
	}
	if req.Region != GlobalRegion && global != nil {
		if d := evaluatePolicy(global, req); d.Filtered {
			return d
		}
	}
	return Decision{}
}

func evaluatePolicy(p *Policy, req Request) Decision {
	// Infrastructure blocking takes precedence: if the URL is on a blocked
	// infrastructure domain, clients cannot reach Encore at all.
	host := urlpattern.DomainOf(req.URL)
	for _, infra := range p.BlockMeasurementInfra {
		id := urlpattern.NormalizeHost(infra)
		if host == id || strings.HasSuffix(host, "."+id) {
			mech := p.InfraMechanism
			if mech == MechanismNone {
				mech = MechanismDNSNXDOMAIN
			}
			return p.applyOverrides(decisionFor(mech, "infrastructure:"+id))
		}
	}
	if p.AllowMeasurementTraffic && req.MeasurementMarker {
		return Decision{}
	}
	for _, rule := range p.Rules {
		if rule.Pattern.Matches(req.URL) {
			return p.applyOverrides(decisionFor(rule.Mechanism, rule.Pattern.String()))
		}
	}
	if len(p.KeywordRules) > 0 {
		lower := strings.ToLower(req.URL)
		for _, kr := range p.KeywordRules {
			if kr.Keyword != "" && strings.Contains(lower, kr.Keyword) {
				return p.applyOverrides(decisionFor(kr.Mechanism, "keyword:"+kr.Keyword))
			}
		}
	}
	return Decision{}
}

// IsFiltered is a convenience wrapper that reports whether the URL would be
// filtered for ordinary (non-marked) traffic from the region.
func (e *Engine) IsFiltered(region geo.CountryCode, url string) bool {
	return e.Evaluate(Request{Region: region, URL: url}).Filtered
}

// applyOverrides adjusts a decision with the policy's tuning knobs.
func (p *Policy) applyOverrides(d Decision) Decision {
	if d.Filtered && d.Mechanism == MechanismThrottle && p.ThrottleDelayMillis > 0 {
		d.ExtraDelayMillis = p.ThrottleDelayMillis
	}
	return d
}

func decisionFor(m Mechanism, matched string) Decision {
	d := Decision{Filtered: true, Mechanism: m, Stage: StageOf(m), MatchedRule: matched}
	switch m {
	case MechanismHTTPBlockPage, MechanismDNSRedirect:
		d.BlockPage = true
	case MechanismThrottle:
		d.ExtraDelayMillis = 30_000
	}
	return d
}

// PaperPolicies returns the filtering policies the paper's measurements
// confirmed (§7.2): youtube.com filtered in Pakistan, Iran, and China;
// twitter.com and facebook.com filtered in China and Iran. Mechanisms follow
// public reporting: Pakistan used DNS tampering for YouTube, Iran serves
// block pages / DNS redirection, and China combines DNS poisoning with TCP
// resets and keyword filtering.
func PaperPolicies() *Engine {
	e := NewEngine()

	cn := &Policy{Region: "CN"}
	cn.AddDomain("youtube.com", MechanismDNSRedirect, "GFW DNS poisoning")
	cn.AddDomain("twitter.com", MechanismTCPReset, "GFW TCP reset")
	cn.AddDomain("facebook.com", MechanismDNSRedirect, "GFW DNS poisoning")
	cn.AddKeyword("falun", MechanismTCPReset)
	cn.AddKeyword("tiananmen", MechanismTCPReset)
	e.SetPolicy(cn)

	ir := &Policy{Region: "IR"}
	ir.AddDomain("youtube.com", MechanismHTTPBlockPage, "national block page")
	ir.AddDomain("twitter.com", MechanismHTTPBlockPage, "national block page")
	ir.AddDomain("facebook.com", MechanismDNSRedirect, "DNS redirection")
	e.SetPolicy(ir)

	pk := &Policy{Region: "PK"}
	pk.AddDomain("youtube.com", MechanismDNSNXDOMAIN, "PTA YouTube ban (2012-2016)")
	e.SetPolicy(pk)

	return e
}

// Summary renders the engine's policies as human-readable lines, sorted by
// region, for reports and debugging.
func (e *Engine) Summary() string {
	var b strings.Builder
	for _, region := range e.Regions() {
		p, _ := e.Policy(region)
		for _, r := range p.Rules {
			fmt.Fprintf(&b, "%s: %s via %s (%s)\n", region, r.Pattern.String(), r.Mechanism, r.Note)
		}
		for _, kr := range p.KeywordRules {
			fmt.Fprintf(&b, "%s: keyword %q via %s\n", region, kr.Keyword, kr.Mechanism)
		}
		for _, infra := range p.BlockMeasurementInfra {
			fmt.Fprintf(&b, "%s: blocks Encore infrastructure %s\n", region, infra)
		}
	}
	return b.String()
}
