package censor

import (
	"strings"
	"testing"

	"encore/internal/geo"
	"encore/internal/urlpattern"
)

func TestMechanismsCoverSevenVarieties(t *testing.T) {
	ms := Mechanisms()
	if len(ms) != 7 {
		t.Fatalf("paper describes seven filtering varieties; engine offers %d", len(ms))
	}
	seen := make(map[Mechanism]bool)
	stages := make(map[Stage]bool)
	for _, m := range ms {
		if m == MechanismNone {
			t.Fatal("Mechanisms should not include MechanismNone")
		}
		if seen[m] {
			t.Fatalf("duplicate mechanism %v", m)
		}
		seen[m] = true
		stages[StageOf(m)] = true
	}
	for _, s := range []Stage{StageDNS, StageTCP, StageHTTP} {
		if !stages[s] {
			t.Fatalf("no mechanism operates at stage %v", s)
		}
	}
}

func TestStageOf(t *testing.T) {
	cases := map[Mechanism]Stage{
		MechanismNone:          StageNone,
		MechanismDNSNXDOMAIN:   StageDNS,
		MechanismDNSRedirect:   StageDNS,
		MechanismTCPReset:      StageTCP,
		MechanismPacketDrop:    StageTCP,
		MechanismHTTPBlockPage: StageHTTP,
		MechanismHTTPDrop:      StageHTTP,
		MechanismThrottle:      StageHTTP,
	}
	for m, want := range cases {
		if got := StageOf(m); got != want {
			t.Errorf("StageOf(%v)=%v, want %v", m, got, want)
		}
	}
}

func TestStringNames(t *testing.T) {
	if MechanismDNSNXDOMAIN.String() != "dns-nxdomain" || StageHTTP.String() != "http" {
		t.Fatal("unexpected string names")
	}
	if Mechanism(42).String() == "" || Stage(42).String() == "" {
		t.Fatal("unknown values should still render")
	}
}

func TestEmptyEngineFiltersNothing(t *testing.T) {
	e := NewEngine()
	if e.IsFiltered("CN", "http://youtube.com/watch") {
		t.Fatal("engine without policies must not filter")
	}
	var zero Engine
	if zero.Evaluate(Request{Region: "CN", URL: "http://youtube.com/"}).Filtered {
		t.Fatal("zero-value engine must not filter")
	}
}

func TestDomainRuleFiltersSubdomainsAndPaths(t *testing.T) {
	e := NewEngine()
	p := &Policy{Region: "PK"}
	p.AddDomain("youtube.com", MechanismDNSNXDOMAIN, "test")
	e.SetPolicy(p)

	for _, u := range []string{
		"http://youtube.com/",
		"http://youtube.com/watch/page-001.html",
		"http://www.youtube.com/favicon.ico",
	} {
		d := e.Evaluate(Request{Region: "PK", URL: u})
		if !d.Filtered || d.Mechanism != MechanismDNSNXDOMAIN || d.Stage != StageDNS {
			t.Fatalf("decision for %s = %+v", u, d)
		}
	}
	if e.IsFiltered("PK", "http://vimeo.com/") {
		t.Fatal("unrelated domain should not be filtered")
	}
	if e.IsFiltered("US", "http://youtube.com/") {
		t.Fatal("other regions should not be filtered")
	}
}

func TestExactAndPrefixRules(t *testing.T) {
	e := NewEngine()
	p := &Policy{Region: "GB"}
	if err := p.AddURL("http://blogspot.com/posts/page-001.html", MechanismHTTPBlockPage, "single post"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddPrefix("http://wordpress.com/posts/", MechanismHTTPDrop, "section"); err != nil {
		t.Fatal(err)
	}
	e.SetPolicy(p)

	if !e.IsFiltered("GB", "http://blogspot.com/posts/page-001.html") {
		t.Fatal("exact URL should be filtered")
	}
	if e.IsFiltered("GB", "http://blogspot.com/posts/page-002.html") {
		t.Fatal("other URLs on the domain should not be filtered")
	}
	if !e.IsFiltered("GB", "http://wordpress.com/posts/page-007.html") {
		t.Fatal("prefix rule should filter URLs under it")
	}
	if e.IsFiltered("GB", "http://wordpress.com/archive/page-007.html") {
		t.Fatal("prefix rule should not filter sibling sections")
	}
}

func TestAddRuleErrors(t *testing.T) {
	p := &Policy{Region: "XX"}
	if err := p.AddURL("ftp://bad", MechanismHTTPDrop, ""); err == nil {
		t.Fatal("expected error for invalid URL")
	}
	if err := p.AddPrefix("ftp://bad/", MechanismHTTPDrop, ""); err == nil {
		t.Fatal("expected error for invalid prefix")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddDomain should panic on invalid domain")
		}
	}()
	p.AddDomain("not a domain!", MechanismTCPReset, "")
}

func TestKeywordRules(t *testing.T) {
	e := NewEngine()
	p := &Policy{Region: "CN"}
	p.AddKeyword("Falun", MechanismTCPReset)
	e.SetPolicy(p)
	d := e.Evaluate(Request{Region: "CN", URL: "http://example.org/articles/falun-gong-report.html"})
	if !d.Filtered || d.Mechanism != MechanismTCPReset {
		t.Fatalf("keyword rule did not fire: %+v", d)
	}
	if !strings.HasPrefix(d.MatchedRule, "keyword:") {
		t.Fatalf("MatchedRule=%q", d.MatchedRule)
	}
	if e.IsFiltered("CN", "http://example.org/articles/weather.html") {
		t.Fatal("non-matching URL filtered")
	}
}

func TestBlockPageAndThrottleDecisions(t *testing.T) {
	if d := decisionFor(MechanismHTTPBlockPage, "x"); !d.BlockPage {
		t.Fatal("block-page mechanism should set BlockPage")
	}
	if d := decisionFor(MechanismDNSRedirect, "x"); !d.BlockPage {
		t.Fatal("DNS redirect should set BlockPage (substituted content)")
	}
	if d := decisionFor(MechanismThrottle, "x"); d.ExtraDelayMillis <= 0 {
		t.Fatal("throttle should add delay")
	}
	if d := decisionFor(MechanismTCPReset, "x"); d.BlockPage || d.ExtraDelayMillis != 0 {
		t.Fatal("TCP reset should not substitute content or delay")
	}
}

func TestInfrastructureBlocking(t *testing.T) {
	e := NewEngine()
	p := &Policy{Region: "IR", BlockMeasurementInfra: []string{"coordinator.encore-project.org"}}
	e.SetPolicy(p)
	d := e.Evaluate(Request{Region: "IR", URL: "http://coordinator.encore-project.org/task.js"})
	if !d.Filtered || d.Stage != StageDNS {
		t.Fatalf("infrastructure request should be DNS-blocked: %+v", d)
	}
	if !strings.HasPrefix(d.MatchedRule, "infrastructure:") {
		t.Fatalf("MatchedRule=%q", d.MatchedRule)
	}
	// Subdomains of the blocked infra domain are blocked too.
	d = e.Evaluate(Request{Region: "IR", URL: "http://mirror.coordinator.encore-project.org/task.js"})
	if !d.Filtered {
		t.Fatal("subdomain of blocked infrastructure should be filtered")
	}
	// A custom infrastructure mechanism is honoured.
	p2 := &Policy{Region: "CN", BlockMeasurementInfra: []string{"collector.encore-project.org"}, InfraMechanism: MechanismTCPReset}
	e.SetPolicy(p2)
	d = e.Evaluate(Request{Region: "CN", URL: "http://collector.encore-project.org/submit"})
	if d.Mechanism != MechanismTCPReset {
		t.Fatalf("custom infra mechanism ignored: %+v", d)
	}
}

func TestDistortingAdversaryAllowsMarkedTraffic(t *testing.T) {
	e := NewEngine()
	p := &Policy{Region: "CN", AllowMeasurementTraffic: true}
	p.AddDomain("facebook.com", MechanismDNSRedirect, "")
	e.SetPolicy(p)
	plain := e.Evaluate(Request{Region: "CN", URL: "http://facebook.com/favicon.ico"})
	marked := e.Evaluate(Request{Region: "CN", URL: "http://facebook.com/favicon.ico", MeasurementMarker: true})
	if !plain.Filtered {
		t.Fatal("ordinary traffic should be filtered")
	}
	if marked.Filtered {
		t.Fatal("distorting adversary should let marked measurement traffic through")
	}
}

func TestPaperPolicies(t *testing.T) {
	e := PaperPolicies()
	cases := []struct {
		region   geo.CountryCode
		domain   string
		filtered bool
	}{
		{"PK", "youtube.com", true},
		{"IR", "youtube.com", true},
		{"CN", "youtube.com", true},
		{"CN", "twitter.com", true},
		{"IR", "twitter.com", true},
		{"CN", "facebook.com", true},
		{"IR", "facebook.com", true},
		{"PK", "twitter.com", false},
		{"PK", "facebook.com", false},
		{"US", "youtube.com", false},
		{"GB", "facebook.com", false},
		{"IN", "twitter.com", false},
	}
	for _, tc := range cases {
		got := e.IsFiltered(tc.region, "http://"+tc.domain+"/favicon.ico")
		if got != tc.filtered {
			t.Errorf("%s / %s: filtered=%v, want %v", tc.region, tc.domain, got, tc.filtered)
		}
	}
}

func TestPaperPoliciesRegionsAndSummary(t *testing.T) {
	e := PaperPolicies()
	regions := e.Regions()
	if len(regions) != 3 {
		t.Fatalf("paper policies cover %d regions, want 3 (CN, IR, PK)", len(regions))
	}
	if _, ok := e.Policy("CN"); !ok {
		t.Fatal("missing CN policy")
	}
	sum := e.Summary()
	for _, want := range []string{"youtube.com", "twitter.com", "facebook.com", "CN", "IR", "PK"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestRulePatternKindsCoexist(t *testing.T) {
	// A policy may mix kinds; first matching rule wins.
	e := NewEngine()
	p := &Policy{Region: "TR"}
	if err := p.AddURL("http://twitter.com/profile/page-001.html", MechanismHTTPBlockPage, "court order"); err != nil {
		t.Fatal(err)
	}
	p.AddDomain("twitter.com", MechanismDNSNXDOMAIN, "full block")
	e.SetPolicy(p)
	d := e.Evaluate(Request{Region: "TR", URL: "http://twitter.com/profile/page-001.html"})
	if d.Mechanism != MechanismHTTPBlockPage {
		t.Fatalf("first matching rule should win, got %v", d.Mechanism)
	}
	d = e.Evaluate(Request{Region: "TR", URL: "http://twitter.com/groups/page-002.html"})
	if d.Mechanism != MechanismDNSNXDOMAIN {
		t.Fatalf("domain rule should catch other URLs, got %v", d.Mechanism)
	}
}

func TestGlobalPolicyAppliesEverywhere(t *testing.T) {
	e := NewEngine()
	global := &Policy{Region: GlobalRegion}
	global.AddDomain("dns-nxdomain.testbed.example.test", MechanismDNSNXDOMAIN, "testbed")
	e.SetPolicy(global)
	for _, region := range []geo.CountryCode{"US", "CN", "BR", "ZZ"} {
		d := e.Evaluate(Request{Region: region, URL: "http://dns-nxdomain.testbed.example.test/pixel.png"})
		if !d.Filtered || d.Mechanism != MechanismDNSNXDOMAIN {
			t.Fatalf("global policy did not apply for %s: %+v", region, d)
		}
	}
	if e.IsFiltered("US", "http://control.testbed.example.test/pixel.png") {
		t.Fatal("global policy should not filter unlisted domains")
	}
}

func TestRegionalPolicyTakesPrecedenceOverGlobal(t *testing.T) {
	e := NewEngine()
	global := &Policy{Region: GlobalRegion}
	global.AddDomain("shared.example.com", MechanismHTTPDrop, "global")
	e.SetPolicy(global)
	regional := &Policy{Region: "CN"}
	regional.AddDomain("shared.example.com", MechanismTCPReset, "regional")
	e.SetPolicy(regional)
	if d := e.Evaluate(Request{Region: "CN", URL: "http://shared.example.com/"}); d.Mechanism != MechanismTCPReset {
		t.Fatalf("regional rule should win: %+v", d)
	}
	if d := e.Evaluate(Request{Region: "US", URL: "http://shared.example.com/"}); d.Mechanism != MechanismHTTPDrop {
		t.Fatalf("global rule should apply elsewhere: %+v", d)
	}
}

func TestMatchedRuleUsesPatternString(t *testing.T) {
	e := PaperPolicies()
	d := e.Evaluate(Request{Region: "PK", URL: "http://youtube.com/watch/page-001.html"})
	if d.MatchedRule != urlpattern.MustParse("youtube.com").String() {
		t.Fatalf("MatchedRule=%q", d.MatchedRule)
	}
}
