// Package urlpattern implements the URL pattern abstraction used by Encore's
// measurement target lists (§5.1). A pattern denotes either a single URL, an
// entire DNS domain (all URLs on that domain and its subdomains), or a URL
// prefix (a section of a Web site). Patterns are the input to the task
// generation pipeline's Pattern Expander.
package urlpattern

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
)

// Kind identifies what a pattern denotes.
type Kind int

const (
	// KindExact matches a single URL.
	KindExact Kind = iota
	// KindDomain matches every URL on a domain (and its subdomains).
	KindDomain
	// KindPrefix matches every URL sharing a path prefix on one domain.
	KindPrefix
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindExact:
		return "exact"
	case KindDomain:
		return "domain"
	case KindPrefix:
		return "prefix"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Errors returned by Parse.
var (
	ErrEmptyPattern   = errors.New("urlpattern: empty pattern")
	ErrInvalidPattern = errors.New("urlpattern: invalid pattern")
)

// Pattern is a parsed URL pattern. The zero value is not valid; use Parse or
// one of the constructors.
type Pattern struct {
	// Kind is the granularity of the pattern.
	Kind Kind
	// Domain is the registered DNS domain the pattern applies to, always
	// lower-case and without a trailing dot.
	Domain string
	// Path is the URL path for exact patterns or the path prefix for prefix
	// patterns. Empty for domain patterns.
	Path string
	// Raw preserves the original pattern text.
	Raw string
}

// Exact constructs a pattern matching a single URL.
func Exact(rawURL string) (Pattern, error) {
	u, err := parseHTTPURL(rawURL)
	if err != nil {
		return Pattern{}, err
	}
	path := u.Path
	if path == "" {
		path = "/"
	}
	return Pattern{Kind: KindExact, Domain: normalizeHost(u.Host), Path: path, Raw: rawURL}, nil
}

// Domain constructs a pattern matching every URL on the given domain.
func Domain(domain string) (Pattern, error) {
	if strings.Contains(domain, "://") {
		u, err := parseHTTPURL(domain)
		if err != nil {
			return Pattern{}, err
		}
		return Pattern{Kind: KindDomain, Domain: normalizeHost(u.Host), Raw: domain}, nil
	}
	d := normalizeHost(domain)
	if !validHostname(d) {
		return Pattern{}, fmt.Errorf("%w: %q is not a domain", ErrInvalidPattern, domain)
	}
	return Pattern{Kind: KindDomain, Domain: d, Raw: domain}, nil
}

// Prefix constructs a pattern matching every URL under the given URL prefix.
func Prefix(rawPrefix string) (Pattern, error) {
	u, err := parseHTTPURL(rawPrefix)
	if err != nil {
		return Pattern{}, err
	}
	path := u.Path
	if path == "" {
		path = "/"
	}
	if !strings.HasSuffix(path, "/") {
		path += "/"
	}
	return Pattern{Kind: KindPrefix, Domain: normalizeHost(u.Host), Path: path, Raw: rawPrefix}, nil
}

// Parse interprets a pattern string using the conventions of curated block
// lists:
//
//   - "example.com"              → domain pattern
//   - "*.example.com"            → domain pattern (wildcard form)
//   - "http://example.com/news/" → prefix pattern (trailing slash)
//   - "http://example.com/a.htm" → exact pattern
//   - "example.com/news/"        → prefix pattern (scheme optional)
func Parse(s string) (Pattern, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Pattern{}, ErrEmptyPattern
	}
	trimmed := strings.TrimPrefix(s, "*.")
	hasScheme := strings.Contains(trimmed, "://")
	hasPath := false
	if hasScheme {
		rest := trimmed[strings.Index(trimmed, "://")+3:]
		hasPath = strings.Contains(rest, "/")
	} else {
		hasPath = strings.Contains(trimmed, "/")
	}
	if !hasPath {
		return Domain(trimmed)
	}
	if strings.HasSuffix(trimmed, "/") {
		p, err := Prefix(trimmed)
		if err != nil {
			return Pattern{}, err
		}
		// A bare "example.com/" denotes the whole domain.
		if p.Path == "/" {
			return Domain(p.Domain)
		}
		p.Raw = s
		return p, nil
	}
	p, err := Exact(trimmed)
	if err != nil {
		return Pattern{}, err
	}
	p.Raw = s
	return p, nil
}

// MustParse is like Parse but panics on error. It is intended for statically
// known patterns in tests and examples.
func MustParse(s string) Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Matches reports whether the pattern matches rawURL. Invalid URLs never
// match.
func (p Pattern) Matches(rawURL string) bool {
	u, err := parseHTTPURL(rawURL)
	if err != nil {
		return false
	}
	host := normalizeHost(u.Host)
	path := u.Path
	if path == "" {
		path = "/"
	}
	switch p.Kind {
	case KindDomain:
		return host == p.Domain || strings.HasSuffix(host, "."+p.Domain)
	case KindPrefix:
		return host == p.Domain && strings.HasPrefix(path, p.Path)
	case KindExact:
		return host == p.Domain && path == p.Path
	default:
		return false
	}
}

// IsTrivial reports whether the pattern denotes exactly one URL and therefore
// requires no expansion by the Pattern Expander (§5.2).
func (p Pattern) IsTrivial() bool { return p.Kind == KindExact }

// URL returns a canonical URL string for the pattern: the exact URL for exact
// patterns, the domain root for domain patterns, and the prefix URL for
// prefix patterns.
func (p Pattern) URL() string {
	switch p.Kind {
	case KindExact, KindPrefix:
		return "http://" + p.Domain + p.Path
	default:
		return "http://" + p.Domain + "/"
	}
}

// String returns a canonical textual form that Parse round-trips.
func (p Pattern) String() string {
	switch p.Kind {
	case KindDomain:
		return p.Domain
	case KindPrefix:
		return "http://" + p.Domain + p.Path
	case KindExact:
		return "http://" + p.Domain + p.Path
	default:
		return p.Raw
	}
}

// Key returns a stable identifier used to aggregate measurements that test
// the same pattern.
func (p Pattern) Key() string {
	return p.Kind.String() + ":" + p.Domain + p.Path
}

func parseHTTPURL(raw string) (*url.URL, error) {
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil, ErrEmptyPattern
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidPattern, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("%w: unsupported scheme %q", ErrInvalidPattern, u.Scheme)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("%w: missing host in %q", ErrInvalidPattern, raw)
	}
	if !validHostname(normalizeHost(u.Host)) {
		return nil, fmt.Errorf("%w: invalid host %q", ErrInvalidPattern, u.Host)
	}
	return u, nil
}

// validHostname reports whether h looks like a DNS host name: non-empty
// dot-separated labels of letters, digits, and hyphens.
func validHostname(h string) bool {
	if h == "" || len(h) > 253 {
		return false
	}
	for _, label := range strings.Split(h, ".") {
		if label == "" || len(label) > 63 {
			return false
		}
		for _, r := range label {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			default:
				return false
			}
		}
	}
	return true
}

// normalizeHost lower-cases a host name and strips any port and trailing dot.
func normalizeHost(host string) string {
	h := strings.ToLower(strings.TrimSpace(host))
	if i := strings.LastIndex(h, ":"); i >= 0 && !strings.Contains(h[i:], "]") {
		h = h[:i]
	}
	return strings.TrimSuffix(h, ".")
}

// NormalizeHost exposes host normalization for other packages (origin
// computation in the browser simulator, geo lookups of host names).
func NormalizeHost(host string) string { return normalizeHost(host) }

// DomainOf returns the normalized host of a URL, or "" if the URL is invalid.
func DomainOf(rawURL string) string {
	u, err := parseHTTPURL(rawURL)
	if err != nil {
		return ""
	}
	return normalizeHost(u.Host)
}
