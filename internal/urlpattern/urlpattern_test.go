package urlpattern

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDomain(t *testing.T) {
	for _, in := range []string{"example.com", "*.example.com", "Example.COM", "example.com/"} {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if p.Kind != KindDomain {
			t.Fatalf("Parse(%q).Kind=%v, want domain", in, p.Kind)
		}
		if p.Domain != "example.com" {
			t.Fatalf("Parse(%q).Domain=%q", in, p.Domain)
		}
	}
}

func TestParseExact(t *testing.T) {
	p, err := Parse("http://example.com/news/article1.html")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindExact {
		t.Fatalf("Kind=%v, want exact", p.Kind)
	}
	if p.Path != "/news/article1.html" {
		t.Fatalf("Path=%q", p.Path)
	}
	if !p.IsTrivial() {
		t.Fatal("exact pattern should be trivial")
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := Parse("http://example.com/blog/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindPrefix {
		t.Fatalf("Kind=%v, want prefix", p.Kind)
	}
	if p.Path != "/blog/" {
		t.Fatalf("Path=%q", p.Path)
	}
	if p.IsTrivial() {
		t.Fatal("prefix pattern should not be trivial")
	}
}

func TestParseSchemelessPrefix(t *testing.T) {
	p, err := Parse("example.com/blog/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != KindPrefix || p.Domain != "example.com" || p.Path != "/blog/" {
		t.Fatalf("unexpected pattern %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(""); !errors.Is(err, ErrEmptyPattern) {
		t.Fatalf("empty pattern error = %v", err)
	}
	if _, err := Parse("   "); !errors.Is(err, ErrEmptyPattern) {
		t.Fatalf("blank pattern error = %v", err)
	}
	if _, err := Parse("ftp://example.com/x"); err == nil {
		t.Fatal("expected error for non-http scheme")
	}
	if _, err := Exact("http://"); err == nil {
		t.Fatal("expected error for missing host")
	}
	if _, err := Domain("not a domain/with/slash"); err == nil {
		t.Fatal("expected error for invalid domain")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("ftp://bad")
}

func TestDomainMatching(t *testing.T) {
	p := MustParse("censored.com")
	matches := []string{
		"http://censored.com/",
		"http://censored.com/favicon.ico",
		"https://www.censored.com/page?id=3",
		"http://a.b.censored.com/x",
		"http://CENSORED.com/x",
		"http://censored.com:8080/x",
	}
	for _, u := range matches {
		if !p.Matches(u) {
			t.Errorf("domain pattern should match %q", u)
		}
	}
	nonMatches := []string{
		"http://notcensored.com/",
		"http://censored.com.evil.com/",
		"http://example.com/censored.com",
		"://bad",
	}
	for _, u := range nonMatches {
		if p.Matches(u) {
			t.Errorf("domain pattern should not match %q", u)
		}
	}
}

func TestPrefixMatching(t *testing.T) {
	p := MustParse("http://example.com/blog/")
	if !p.Matches("http://example.com/blog/post-1.html") {
		t.Fatal("prefix should match URL under it")
	}
	if p.Matches("http://example.com/news/post-1.html") {
		t.Fatal("prefix should not match sibling path")
	}
	if p.Matches("http://other.com/blog/post-1.html") {
		t.Fatal("prefix should not match other domain")
	}
	if p.Matches("http://sub.example.com/blog/post-1.html") {
		t.Fatal("prefix should not match subdomain")
	}
}

func TestExactMatching(t *testing.T) {
	p := MustParse("http://example.com/a/b.html")
	if !p.Matches("http://example.com/a/b.html") {
		t.Fatal("exact should match itself")
	}
	if !p.Matches("https://example.com/a/b.html?utm=1") {
		t.Fatal("exact should match regardless of scheme and query")
	}
	if p.Matches("http://example.com/a/b.html.evil") {
		t.Fatal("exact should not match longer path")
	}
	if p.Matches("http://example.com/a/") {
		t.Fatal("exact should not match parent path")
	}
}

func TestRootURLMatchesDomainRoot(t *testing.T) {
	p, err := Exact("http://example.com")
	if err != nil {
		t.Fatal(err)
	}
	if p.Path != "/" {
		t.Fatalf("root path=%q, want /", p.Path)
	}
	if !p.Matches("http://example.com/") {
		t.Fatal("root exact pattern should match trailing-slash URL")
	}
}

func TestURLAndString(t *testing.T) {
	d := MustParse("example.com")
	if d.URL() != "http://example.com/" {
		t.Fatalf("domain URL=%q", d.URL())
	}
	if d.String() != "example.com" {
		t.Fatalf("domain String=%q", d.String())
	}
	e := MustParse("http://example.com/x.html")
	if e.URL() != "http://example.com/x.html" {
		t.Fatalf("exact URL=%q", e.URL())
	}
	pre := MustParse("http://example.com/blog/")
	if !strings.HasSuffix(pre.URL(), "/blog/") {
		t.Fatalf("prefix URL=%q", pre.URL())
	}
}

func TestKeyDistinguishesKinds(t *testing.T) {
	a := MustParse("example.com")
	b := MustParse("http://example.com/blog/")
	c := MustParse("http://example.com/blog/post.html")
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true}
	if len(keys) != 3 {
		t.Fatalf("keys collide: %v", keys)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"example.com",
		"http://example.com/blog/",
		"http://example.com/a/b.html",
	} {
		p := MustParse(in)
		again := MustParse(p.String())
		if again.Key() != p.Key() {
			t.Fatalf("round trip of %q changed key: %q != %q", in, again.Key(), p.Key())
		}
	}
}

func TestNormalizeHost(t *testing.T) {
	cases := map[string]string{
		"Example.COM":      "example.com",
		"example.com:8080": "example.com",
		"example.com.":     "example.com",
		"  example.com ":   "example.com",
	}
	for in, want := range cases {
		if got := NormalizeHost(in); got != want {
			t.Errorf("NormalizeHost(%q)=%q, want %q", in, got, want)
		}
	}
}

func TestDomainOf(t *testing.T) {
	if got := DomainOf("https://Sub.Example.com:443/x"); got != "sub.example.com" {
		t.Fatalf("DomainOf=%q", got)
	}
	if got := DomainOf("::bad::"); got != "" {
		t.Fatalf("DomainOf(invalid)=%q, want empty", got)
	}
}

func TestKindString(t *testing.T) {
	if KindExact.String() != "exact" || KindDomain.String() != "domain" || KindPrefix.String() != "prefix" {
		t.Fatal("unexpected kind strings")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestQuickDomainPatternMatchesOwnURLs(t *testing.T) {
	f := func(label uint16, path uint16) bool {
		domain := "d" + itoa(int(label%1000)) + ".example.org"
		p, err := Domain(domain)
		if err != nil {
			return false
		}
		u := "http://" + domain + "/page" + itoa(int(path%50)) + ".html"
		return p.Matches(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := []byte{}
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
