module encore

go 1.21
