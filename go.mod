module encore

go 1.24
