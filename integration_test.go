package encore

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"encore/internal/censor"
	"encore/internal/clientsim"
	"encore/internal/collectserver"
	"encore/internal/coordserver"
	"encore/internal/core"
	"encore/internal/geo"
	"encore/internal/inference"
	"encore/internal/originserver"
	"encore/internal/pipeline"
	"encore/internal/results"
	"encore/internal/scheduler"
)

// TestWireFormatEndToEnd exercises the real HTTP wire format across the three
// servers: the origin page carries the embed snippet, the coordination server
// serves executable-looking JavaScript containing measurement IDs, and the
// collection server accepts the query-string submissions the generated
// JavaScript would issue (Appendix A). The "browser" here is a plain Go HTTP
// client plus a regular expression standing in for JavaScript execution.
func TestWireFormatEndToEnd(t *testing.T) {
	g := geo.NewRegistry(1)

	// Task set with one image candidate per §7.2 domain.
	ts := pipeline.NewTaskSet()
	for _, d := range []string{"youtube.com", "twitter.com", "facebook.com"} {
		ts.Add(pipeline.Candidate{
			PatternKey: "domain:" + d,
			Type:       core.TaskImage,
			TargetURL:  "http://" + d + "/favicon.ico",
			Strict:     true,
		})
	}
	index := results.NewTaskIndex()
	store := results.NewStore()
	sched := scheduler.New(ts, scheduler.DefaultConfig())

	collector := collectserver.New(store, index, g)
	collectorSrv := httptest.NewServer(collector)
	defer collectorSrv.Close()

	snippet := core.SnippetOptions{CollectorURL: collectorSrv.URL}
	coordinator := coordserver.New(sched, index, g, snippet)
	coordinatorSrv := httptest.NewServer(coordinator)
	defer coordinatorSrv.Close()
	snippet.CoordinatorURL = coordinatorSrv.URL
	coordinator.Snippet = snippet

	origin := originserver.New("professor.example.edu", snippet)
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	// 1. The visitor loads the origin page and finds the embed snippet.
	page := fetchBody(t, originSrv.URL+"/", nil)
	if !strings.Contains(page, coordinatorSrv.URL+"/task.js") {
		t.Fatalf("origin page does not reference the coordinator:\n%s", page)
	}

	// 2. The browser fetches task.js cross-origin from the coordinator.
	pkIP, err := g.RandomIP("PK")
	if err != nil {
		t.Fatal(err)
	}
	headers := map[string]string{
		"User-Agent":      "Mozilla/5.0 (X11; Linux x86_64) Chrome/39.0 Safari/537.36",
		"X-Forwarded-For": pkIP.String(),
		"Referer":         originSrv.URL + "/",
	}
	js := fetchBody(t, coordinatorSrv.URL+"/task.js", headers)
	idRe := regexp.MustCompile(`M\.measurementId = "([^"]+)"`)
	matches := idRe.FindAllStringSubmatch(js, -1)
	if len(matches) == 0 {
		t.Fatalf("no measurement IDs in served task JS:\n%s", js)
	}
	if !strings.Contains(js, collectorSrv.URL) {
		t.Fatal("task JS does not point at the collection server")
	}

	// 3. The task runs in the browser; we emulate its submissions exactly as
	//    the generated JavaScript constructs them: an init record followed
	//    by a failure record (youtube.com is unreachable from Pakistan).
	for _, m := range matches {
		id := m[1]
		if _, ok := index.Lookup(id); !ok {
			t.Fatalf("measurement ID %q not registered with the task index", id)
		}
		for _, state := range []core.State{core.StateInit, core.StateFailure} {
			url := collectserver.SubmitURL(collectorSrv.URL, id, state, 1234)
			fetchBody(t, url, headers)
		}
	}

	// 4. The collection server stored geolocated, attributed measurements.
	if store.Len() != len(matches) {
		t.Fatalf("store has %d measurements, want %d", store.Len(), len(matches))
	}
	for _, m := range store.All() {
		if m.Region != "PK" {
			t.Fatalf("measurement not geolocated to PK: %+v", m)
		}
		if m.Browser != core.BrowserChrome {
			t.Fatalf("browser not parsed from User-Agent: %+v", m)
		}
		if m.State != core.StateFailure {
			t.Fatalf("terminal state not recorded: %+v", m)
		}
		if !strings.HasPrefix(m.PatternKey, "domain:") {
			t.Fatalf("submission not attributed to its pattern: %+v", m)
		}
	}
}

func fetchBody(t *testing.T, url string, headers map[string]string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestLongitudinalOnsetEndToEnd changes the censor's policy halfway through a
// simulated campaign (Turkey blocking twitter.com, as happened in March 2014)
// and checks that windowed detection localizes the onset, demonstrating the
// longitudinal capability the paper motivates in §1.
func TestLongitudinalOnsetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("longitudinal campaign is slow")
	}
	eng := censor.NewEngine() // starts with no filtering anywhere
	stack := clientsim.BuildStack(clientsim.StackConfig{Seed: 314, Censor: eng})

	start := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	regions := []geo.CountryCode{"TR", "TR", "US", "DE", "GB"}

	// Phase 1: two unfiltered weeks.
	stack.Population.RunCampaign(clientsim.CampaignConfig{
		Visits:   1200,
		Start:    start,
		Duration: 14 * 24 * time.Hour,
		Regions:  regions,
	})
	// Phase 2: Turkey orders twitter.com blocked; two more weeks.
	tr := &censor.Policy{Region: "TR"}
	tr.AddDomain("twitter.com", censor.MechanismDNSRedirect, "court order, March 2014")
	eng.SetPolicy(tr)
	stack.Population.RunCampaign(clientsim.CampaignConfig{
		Visits:   1200,
		Start:    start.Add(14 * 24 * time.Hour),
		Duration: 14 * 24 * time.Hour,
		Regions:  regions,
	})

	detector := inference.New(inference.DefaultConfig())
	windows := detector.DetectWindows(stack.Store, 7*24*time.Hour)
	if len(windows) < 4 {
		t.Fatalf("expected at least 4 weekly windows, got %d", len(windows))
	}
	transitions := inference.Transitions(windows, inference.DefaultConfig().MinMeasurements)
	var onset *inference.Transition
	for i := range transitions {
		if transitions[i].PatternKey == "domain:twitter.com" && transitions[i].Region == "TR" && transitions[i].FilteredNow {
			onset = &transitions[i]
		}
	}
	if onset == nil {
		t.Fatalf("no onset transition detected; transitions=%+v\n%s",
			transitions, inference.TimelineReport(windows, 5))
	}
	// The onset should be localized to the week the block started (± one
	// window of slack for sparse cells).
	blockStart := start.Add(14 * 24 * time.Hour)
	if onset.At.Before(blockStart.Add(-7*24*time.Hour)) || onset.At.After(blockStart.Add(14*24*time.Hour)) {
		t.Fatalf("onset localized to %v, expected near %v", onset.At, blockStart)
	}
	// twitter.com must not be flagged in TR during the first two weeks.
	firstWeeks := inference.FilteredSet(windows[0].Verdicts)
	if firstWeeks["domain:twitter.com|TR"] {
		t.Fatal("twitter.com flagged in TR before the block began")
	}
}
