package encore

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"encore/internal/censor"
	"encore/internal/clientsim"
	"encore/internal/collectserver"
	"encore/internal/coordserver"
	"encore/internal/core"
	"encore/internal/geo"
	"encore/internal/inference"
	"encore/internal/originserver"
	"encore/internal/pipeline"
	"encore/internal/results"
	"encore/internal/scheduler"
)

// TestWireFormatEndToEnd exercises the real HTTP wire format across the three
// servers: the origin page carries the embed snippet, the coordination server
// serves executable-looking JavaScript containing measurement IDs, and the
// collection server accepts the query-string submissions the generated
// JavaScript would issue (Appendix A). The "browser" here is a plain Go HTTP
// client plus a regular expression standing in for JavaScript execution.
func TestWireFormatEndToEnd(t *testing.T) {
	g := geo.NewRegistry(1)

	// Task set with one image candidate per §7.2 domain.
	ts := pipeline.NewTaskSet()
	for _, d := range []string{"youtube.com", "twitter.com", "facebook.com"} {
		ts.Add(pipeline.Candidate{
			PatternKey: "domain:" + d,
			Type:       core.TaskImage,
			TargetURL:  "http://" + d + "/favicon.ico",
			Strict:     true,
		})
	}
	index := results.NewTaskIndex()
	store := results.NewStore()
	sched := scheduler.New(ts, scheduler.DefaultConfig())

	collector := collectserver.New(store, index, g)
	collectorSrv := httptest.NewServer(collector)
	defer collectorSrv.Close()

	snippet := core.SnippetOptions{CollectorURL: collectorSrv.URL}
	coordinator := coordserver.New(sched, index, g, snippet)
	coordinatorSrv := httptest.NewServer(coordinator)
	defer coordinatorSrv.Close()
	snippet.CoordinatorURL = coordinatorSrv.URL
	coordinator.Snippet = snippet

	origin := originserver.New("professor.example.edu", snippet)
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	// 1. The visitor loads the origin page and finds the embed snippet.
	page := fetchBody(t, originSrv.URL+"/", nil)
	if !strings.Contains(page, coordinatorSrv.URL+"/task.js") {
		t.Fatalf("origin page does not reference the coordinator:\n%s", page)
	}

	// 2. The browser fetches task.js cross-origin from the coordinator.
	pkIP, err := g.RandomIP("PK")
	if err != nil {
		t.Fatal(err)
	}
	headers := map[string]string{
		"User-Agent":      "Mozilla/5.0 (X11; Linux x86_64) Chrome/39.0 Safari/537.36",
		"X-Forwarded-For": pkIP.String(),
		"Referer":         originSrv.URL + "/",
	}
	js := fetchBody(t, coordinatorSrv.URL+"/task.js", headers)
	idRe := regexp.MustCompile(`M\.measurementId = "([^"]+)"`)
	matches := idRe.FindAllStringSubmatch(js, -1)
	if len(matches) == 0 {
		t.Fatalf("no measurement IDs in served task JS:\n%s", js)
	}
	if !strings.Contains(js, collectorSrv.URL) {
		t.Fatal("task JS does not point at the collection server")
	}

	// 3. The task runs in the browser; we emulate its submissions exactly as
	//    the generated JavaScript constructs them: an init record followed
	//    by a failure record (youtube.com is unreachable from Pakistan).
	for _, m := range matches {
		id := m[1]
		if _, ok := index.Lookup(id); !ok {
			t.Fatalf("measurement ID %q not registered with the task index", id)
		}
		for _, state := range []core.State{core.StateInit, core.StateFailure} {
			url := collectserver.SubmitURL(collectorSrv.URL, id, state, 1234)
			fetchBody(t, url, headers)
		}
	}

	// 4. The collection server stored geolocated, attributed measurements.
	if store.Len() != len(matches) {
		t.Fatalf("store has %d measurements, want %d", store.Len(), len(matches))
	}
	for _, m := range store.All() {
		if m.Region != "PK" {
			t.Fatalf("measurement not geolocated to PK: %+v", m)
		}
		if m.Browser != core.BrowserChrome {
			t.Fatalf("browser not parsed from User-Agent: %+v", m)
		}
		if m.State != core.StateFailure {
			t.Fatalf("terminal state not recorded: %+v", m)
		}
		if !strings.HasPrefix(m.PatternKey, "domain:") {
			t.Fatalf("submission not attributed to its pattern: %+v", m)
		}
	}
}

func fetchBody(t *testing.T, url string, headers map[string]string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestConcurrentIngestSoak runs a short measurement campaign with many
// concurrent client streams submitting into one collection server with the
// batched async ingest queue enabled — the §5.5 deployment shape — and then
// audits the store for every invariant concurrency could have violated. Run
// under -race (scripts/ci.sh does) this is the ingest path's soak test.
func TestConcurrentIngestSoak(t *testing.T) {
	stack := clientsim.BuildStack(clientsim.StackConfig{Seed: 271, Censor: censor.PaperPolicies()})
	ingester := stack.Collector.EnableAsyncIngest(collectserver.IngestConfig{
		Workers: 4, QueueSize: 256, BatchSize: 32,
	})

	const workers = 8
	visits := 400
	if testing.Short() {
		visits = 120
	}
	res := stack.Population.RunCampaignConcurrent(clientsim.CampaignConfig{
		Visits:   visits,
		Start:    time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC),
		Duration: 24 * time.Hour,
	}, workers)
	ingester.Close()
	stack.Collector.Ingest = nil

	if res.Visits != visits {
		t.Fatalf("campaign ran %d visits, want %d", res.Visits, visits)
	}
	if res.TasksSubmitted == 0 {
		t.Fatal("no submissions survived the concurrent campaign")
	}
	st := ingester.Stats()
	if st.StoreErrors != 0 {
		t.Fatalf("ingest workers hit %d store errors", st.StoreErrors)
	}
	if st.Enqueued != st.Stored {
		t.Fatalf("ingester enqueued %d but stored %d", st.Enqueued, st.Stored)
	}

	// Store invariants after concurrent ingest: consistent counters, no
	// duplicate IDs, every record attributed and geolocated, terminal states
	// retrievable.
	all := stack.Store.All()
	if len(all) != stack.Store.Len() {
		t.Fatalf("All()=%d records but Len()=%d", len(all), stack.Store.Len())
	}
	seen := make(map[string]bool, len(all))
	for _, m := range all {
		if seen[m.MeasurementID] {
			t.Fatalf("duplicate measurement ID %s", m.MeasurementID)
		}
		seen[m.MeasurementID] = true
		if m.PatternKey == "" {
			t.Fatalf("unattributed measurement: %+v", m)
		}
		if _, ok := stack.TaskIndex.Lookup(m.MeasurementID); !ok {
			t.Fatalf("stored measurement %s has no registered task", m.MeasurementID)
		}
		got, ok := stack.Store.Get(m.MeasurementID)
		if !ok || got.MeasurementID != m.MeasurementID {
			t.Fatalf("Get(%s) lost a stored measurement", m.MeasurementID)
		}
	}
	stats := stack.Store.Stats()
	if stats.Measurements != len(all) {
		t.Fatalf("Stats().Measurements=%d, want %d", stats.Measurements, len(all))
	}
	// The concurrently-collected store must still be analyzable: detection
	// runs and aggregation conserves counts (Aggregate excludes controls).
	nonControl := 0
	for _, m := range all {
		if !m.Control {
			nonControl++
		}
	}
	total := 0
	for _, g := range results.Aggregate(all) {
		if g.Successes+g.Failures+g.InitOnly != g.Total {
			t.Fatalf("aggregation tallies inconsistent: %+v", g)
		}
		total += g.Total
	}
	if total != nonControl {
		t.Fatalf("aggregation conserved %d measurements, want %d", total, nonControl)
	}
	detector := inference.New(inference.DefaultConfig())
	_ = detector.DetectStore(stack.Store)
}

// TestLongitudinalOnsetEndToEnd changes the censor's policy halfway through a
// simulated campaign (Turkey blocking twitter.com, as happened in March 2014)
// and checks that windowed detection localizes the onset, demonstrating the
// longitudinal capability the paper motivates in §1.
func TestLongitudinalOnsetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("longitudinal campaign is slow")
	}
	eng := censor.NewEngine() // starts with no filtering anywhere
	stack := clientsim.BuildStack(clientsim.StackConfig{Seed: 314, Censor: eng})

	start := time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)
	regions := []geo.CountryCode{"TR", "TR", "US", "DE", "GB"}

	// Phase 1: two unfiltered weeks.
	stack.Population.RunCampaign(clientsim.CampaignConfig{
		Visits:   1200,
		Start:    start,
		Duration: 14 * 24 * time.Hour,
		Regions:  regions,
	})
	// Phase 2: Turkey orders twitter.com blocked; two more weeks.
	tr := &censor.Policy{Region: "TR"}
	tr.AddDomain("twitter.com", censor.MechanismDNSRedirect, "court order, March 2014")
	eng.SetPolicy(tr)
	stack.Population.RunCampaign(clientsim.CampaignConfig{
		Visits:   1200,
		Start:    start.Add(14 * 24 * time.Hour),
		Duration: 14 * 24 * time.Hour,
		Regions:  regions,
	})

	detector := inference.New(inference.DefaultConfig())
	windows := detector.DetectWindows(stack.Store, 7*24*time.Hour)
	if len(windows) < 4 {
		t.Fatalf("expected at least 4 weekly windows, got %d", len(windows))
	}
	transitions := inference.Transitions(windows, inference.DefaultConfig().MinMeasurements)
	var onset *inference.Transition
	for i := range transitions {
		if transitions[i].PatternKey == "domain:twitter.com" && transitions[i].Region == "TR" && transitions[i].FilteredNow {
			onset = &transitions[i]
		}
	}
	if onset == nil {
		t.Fatalf("no onset transition detected; transitions=%+v\n%s",
			transitions, inference.TimelineReport(windows, 5))
	}
	// The onset should be localized to the week the block started (± one
	// window of slack for sparse cells).
	blockStart := start.Add(14 * 24 * time.Hour)
	if onset.At.Before(blockStart.Add(-7*24*time.Hour)) || onset.At.After(blockStart.Add(14*24*time.Hour)) {
		t.Fatalf("onset localized to %v, expected near %v", onset.At, blockStart)
	}
	// twitter.com must not be flagged in TR during the first two weeks.
	firstWeeks := inference.FilteredSet(windows[0].Verdicts)
	if firstWeeks["domain:twitter.com|TR"] {
		t.Fatal("twitter.com flagged in TR before the block began")
	}
}

// TestKillAndRestartRecovery is the durability acceptance test: a deployment
// ingests a concurrent campaign through the batched async path with the WAL
// attached, the process "dies" (the in-memory store and aggregation tier are
// discarded; under SyncAlways nothing needs a clean close), and a restarted
// collector recovers via OpenStoreFromWAL + Aggregator.Backfill. The
// recovered store must match the pre-crash store bit-for-bit, and incremental
// detection over the backfilled aggregation tier must reproduce the pre-crash
// batch DetectStore verdicts exactly.
func TestKillAndRestartRecovery(t *testing.T) {
	walDir := t.TempDir()
	stack := clientsim.BuildStack(clientsim.StackConfig{
		Seed:   272,
		Censor: censor.PaperPolicies(),
		// SyncAlways: every committed record is durable the moment the store
		// acknowledges it, so the simulated kill below needs no shutdown
		// cooperation from the WAL at all.
		WAL: &results.WALConfig{Dir: walDir, Policy: results.SyncAlways},
	})
	ingester := stack.Collector.EnableAsyncIngest(collectserver.IngestConfig{
		Workers: 4, QueueSize: 256, BatchSize: 32,
	})

	visits := 300
	if testing.Short() {
		visits = 100
	}
	stack.Population.RunCampaignConcurrent(clientsim.CampaignConfig{
		Visits:   visits,
		Start:    time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC),
		Duration: 24 * time.Hour,
	}, 8)

	// Drain the queue: submissions still in flight at a crash were never
	// observable in the store, so the pre-crash reference state is what the
	// drained store holds.
	ingester.Close()
	stack.Collector.Ingest = nil
	if stack.Store.Len() == 0 {
		t.Fatal("campaign stored nothing")
	}

	var preSnapshot strings.Builder
	if err := stack.Store.WriteJSONL(&preSnapshot); err != nil {
		t.Fatal(err)
	}
	preVerdicts := inference.New(inference.DefaultConfig()).DetectStore(stack.Store)

	// Kill: drop every in-memory tier without closing the WAL. (The open
	// segment files leak until the test process exits, exactly like a real
	// crash.)
	stack.Store, stack.Aggregator = nil, nil

	// Restart: replay the log, cold-start the analysis tier, detect.
	recovered, stats, err := results.OpenStoreFromWAL(walDir)
	if err != nil {
		t.Fatalf("OpenStoreFromWAL: %v", err)
	}
	if stats.TornSegments != 0 {
		t.Fatalf("SyncAlways WAL recovered %d torn segments", stats.TornSegments)
	}
	agg := results.NewAggregator(results.AggregatorConfig{})
	if folded := agg.Backfill(recovered); folded != recovered.Len() {
		t.Fatalf("backfilled %d of %d recovered measurements", folded, recovered.Len())
	}

	var postSnapshot strings.Builder
	if err := recovered.WriteJSONL(&postSnapshot); err != nil {
		t.Fatal(err)
	}
	if preSnapshot.String() != postSnapshot.String() {
		t.Fatal("recovered store snapshot differs from the pre-crash store")
	}

	postVerdicts := inference.New(inference.DefaultConfig()).DetectIncremental(agg)
	if len(postVerdicts) != len(preVerdicts) {
		t.Fatalf("recovered detection produced %d verdicts, pre-crash batch produced %d",
			len(postVerdicts), len(preVerdicts))
	}
	for i := range preVerdicts {
		if preVerdicts[i] != postVerdicts[i] {
			t.Fatalf("verdict %d diverged after recovery:\n pre: %+v\npost: %+v",
				i, preVerdicts[i], postVerdicts[i])
		}
	}
}
