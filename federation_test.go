package encore

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	apiclient "encore/internal/api/client"
	"encore/internal/api/federation"
	"encore/internal/censor"
	"encore/internal/clientsim"
	"encore/internal/collectserver"
	"encore/internal/core"
	"encore/internal/geo"
	"encore/internal/inference"
	"encore/internal/results"
)

// edgeSplitter routes each submission to one of several edge collectors by
// measurement-ID hash, modelling a population whose beacon traffic lands on
// different collection servers (DNS round robin, regional anycast). Hashing
// by ID keeps a measurement's init and terminal submissions on one edge,
// like a browser re-resolving within one page view would.
type edgeSplitter struct {
	edges []clientsim.SubmissionServer
}

func (s *edgeSplitter) Accept(sub core.Submission) error {
	return s.edges[int(results.ShardHash(sub.MeasurementID))%len(s.edges)].Accept(sub)
}

// buildUpstream assembles an aggregation-tier instance: a collection server
// that accepts the federation lane, with an incremental aggregator attached.
func buildUpstream(t *testing.T, g *geo.Registry) (*results.Store, *results.Aggregator, *httptest.Server) {
	t.Helper()
	store := results.NewStore()
	agg := results.NewAggregator(results.AggregatorConfig{})
	store.AddObserver(agg)
	server := collectserver.New(store, results.NewTaskIndex(), g)
	server.Guard = nil
	server.AllowAttributed = true
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	return store, agg, srv
}

// federationCampaign is the campaign both topologies run; identical seeds
// make the two runs submit identical measurement streams.
func federationCampaign(visits int) clientsim.CampaignConfig {
	return clientsim.CampaignConfig{
		Visits:   visits,
		Start:    time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC),
		Duration: 14 * 24 * time.Hour,
	}
}

// TestFederatedCollectorsMatchSingleCollector is the federation acceptance
// test: the same campaign ingested by (a) one collector and (b) two edge
// collectors forwarding over the v2 API into one aggregation tier must
// produce identical DetectIncremental verdicts.
func TestFederatedCollectorsMatchSingleCollector(t *testing.T) {
	const seed, visits = 977, 400

	// Baseline: a single collector ingests everything. The abuse guard is
	// disabled on every topology so rate state (per-collector in the
	// federated run) cannot skew the comparison.
	baseline := clientsim.BuildStack(clientsim.StackConfig{Seed: seed, Censor: censor.PaperPolicies()})
	baseline.Collector.Guard = nil
	baseline.Population.RunCampaign(federationCampaign(visits))
	baseVerdicts := inference.New(inference.DefaultConfig()).DetectIncremental(baseline.Aggregator)
	if baseline.Store.Len() == 0 || len(baseVerdicts) == 0 {
		t.Fatalf("baseline campaign produced nothing: %d stored, %d verdicts", baseline.Store.Len(), len(baseVerdicts))
	}

	// Federated: an identically seeded deployment, with the population's
	// submissions split across two edge collectors that forward upstream.
	fed := clientsim.BuildStack(clientsim.StackConfig{Seed: seed, Censor: censor.PaperPolicies()})
	fed.Collector.Guard = nil
	upStore, upAgg, upSrv := buildUpstream(t, fed.Geo)

	edge1 := fed.Collector // shares the stack's task index
	edge2 := collectserver.New(results.NewStore(), fed.TaskIndex, fed.Geo)
	edge2.Guard = nil

	var forwarders []*federation.Forwarder
	for _, store := range []*results.Store{edge1.Store, edge2.Store} {
		f, err := federation.NewForwarder(federation.ForwarderConfig{
			Upstream:      upSrv.URL,
			MaxBatch:      64,
			FlushInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		store.AddObserver(f)
		forwarders = append(forwarders, f)
	}
	fed.Population.Collector = &edgeSplitter{edges: []clientsim.SubmissionServer{edge1, edge2}}

	fed.Population.RunCampaign(federationCampaign(visits))
	for _, f := range forwarders {
		if err := f.Close(); err != nil {
			t.Fatalf("forwarder close: %v", err)
		}
		st := f.Stats()
		if st.Dropped != 0 || st.Rejected != 0 || st.Pending != 0 {
			t.Fatalf("forwarder lost records: %+v", st)
		}
	}

	// Both edges saw traffic; their union reached the aggregation tier.
	if edge1.Store.Len() == 0 || edge2.Store.Len() == 0 {
		t.Fatalf("splitter did not spread traffic: edge1=%d edge2=%d", edge1.Store.Len(), edge2.Store.Len())
	}
	if got, want := upStore.Len(), edge1.Store.Len()+edge2.Store.Len(); got != want {
		t.Fatalf("upstream has %d records, edges committed %d", got, want)
	}
	if got, want := upStore.Len(), baseline.Store.Len(); got != want {
		t.Fatalf("federated tier has %d records, single collector stored %d", got, want)
	}

	// The acceptance criterion: verdict-for-verdict equality.
	fedVerdicts := inference.New(inference.DefaultConfig()).DetectIncremental(upAgg)
	if len(fedVerdicts) != len(baseVerdicts) {
		t.Fatalf("federated detection produced %d verdicts, baseline %d", len(fedVerdicts), len(baseVerdicts))
	}
	for i := range baseVerdicts {
		if fedVerdicts[i] != baseVerdicts[i] {
			t.Fatalf("verdict %d diverged:\n  single: %+v\nfederated: %+v", i, baseVerdicts[i], fedVerdicts[i])
		}
	}
}

// TestFederationSurvivesCollectorLoss kills one of two edge collectors
// mid-deployment: its forwarder drains what that edge had committed, the
// remaining edge absorbs all subsequent traffic, and the aggregation tier
// ends holding exactly the union of what the two edges committed — the
// failure mode a distributed-collectors deployment must shrug off.
func TestFederationSurvivesCollectorLoss(t *testing.T) {
	const seed, phaseVisits = 978, 200
	stack := clientsim.BuildStack(clientsim.StackConfig{Seed: seed, Censor: censor.PaperPolicies()})
	stack.Collector.Guard = nil
	upStore, upAgg, upSrv := buildUpstream(t, stack.Geo)

	edge1 := stack.Collector
	edge2 := collectserver.New(results.NewStore(), stack.TaskIndex, stack.Geo)
	edge2.Guard = nil
	newForwarder := func(store *results.Store) *federation.Forwarder {
		f, err := federation.NewForwarder(federation.ForwarderConfig{
			Upstream:      upSrv.URL,
			MaxBatch:      32,
			FlushInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		store.AddObserver(f)
		return f
	}
	f1 := newForwarder(edge1.Store)
	f2 := newForwarder(edge2.Store)

	// Phase 1: both edges share the traffic.
	stack.Population.Collector = &edgeSplitter{edges: []clientsim.SubmissionServer{edge1, edge2}}
	cfg := federationCampaign(phaseVisits)
	stack.Population.RunCampaign(cfg)

	// Edge 2 dies: drain its forwarder (an orderly loss; a crash-loss would
	// be bounded by the forwarder's flush interval) and reroute everything
	// to edge 1.
	if err := f2.Close(); err != nil {
		t.Fatalf("edge2 drain: %v", err)
	}
	edge2Committed := edge2.Store.Len()
	if edge2Committed == 0 {
		t.Fatal("edge2 saw no traffic before dying")
	}
	stack.Population.Collector = edge1

	// Phase 2: the survivor carries the rest of the campaign.
	cfg.Start = cfg.Start.Add(cfg.Duration)
	stack.Population.RunCampaign(cfg)
	if err := f1.Close(); err != nil {
		t.Fatalf("edge1 drain: %v", err)
	}

	if got, want := upStore.Len(), edge1.Store.Len()+edge2Committed; got != want {
		t.Fatalf("aggregation tier has %d records, edges committed %d", got, want)
	}
	// Every record either edge committed is upstream, final state intact.
	for _, edgeStore := range []*results.Store{edge1.Store, edge2.Store} {
		edgeStore.Range(nil, func(m results.Measurement) bool {
			up, ok := upStore.Get(m.MeasurementID)
			if !ok {
				t.Errorf("measurement %s missing upstream", m.MeasurementID)
				return false
			}
			if up.State != m.State {
				t.Errorf("measurement %s state %s upstream, %s at edge", m.MeasurementID, up.State, m.State)
				return false
			}
			return true
		})
	}
	// The merged tier is analyzable end to end.
	verdicts := inference.New(inference.DefaultConfig()).DetectIncremental(upAgg)
	if len(verdicts) == 0 {
		t.Fatal("no verdicts over the merged aggregation tier")
	}
}

// TestFederationSurvivesEdgeCrashAndRestart is the lossless-federation
// acceptance test: an edge collector ingests under a WAL while its upstream
// is unreachable, crashes (no drain, no cursor advance), restarts by
// replaying the WAL, and its forwarder resumes from the persisted cursor.
// The upstream must end with the aggregation tier a never-partitioned
// single collector would have produced — verdict-for-verdict — with zero
// records dropped.
func TestFederationSurvivesEdgeCrashAndRestart(t *testing.T) {
	const seed, phaseVisits = 979, 200

	// Baseline: one collector ingests both phases directly.
	baseline := clientsim.BuildStack(clientsim.StackConfig{Seed: seed, Censor: censor.PaperPolicies()})
	baseline.Collector.Guard = nil
	baseCfg := federationCampaign(phaseVisits)
	baseline.Population.RunCampaign(baseCfg)
	baseCfg.Start = baseCfg.Start.Add(baseCfg.Duration)
	baseline.Population.RunCampaign(baseCfg)
	baseVerdicts := inference.New(inference.DefaultConfig()).DetectIncremental(baseline.Aggregator)
	if baseline.Store.Len() == 0 || len(baseVerdicts) == 0 {
		t.Fatalf("baseline produced nothing: %d stored, %d verdicts", baseline.Store.Len(), len(baseVerdicts))
	}

	// Federated: an identically seeded deployment with one WAL-backed edge
	// forwarding through a gate that simulates the upstream outage.
	stack := clientsim.BuildStack(clientsim.StackConfig{Seed: seed, Censor: censor.PaperPolicies()})
	stack.Collector.Guard = nil
	upStore, upAgg, upSrv := buildUpstream(t, stack.Geo)
	var down atomic.Bool
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "upstream down", http.StatusServiceUnavailable)
			return
		}
		upSrv.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(gate.Close)

	walDir := t.TempDir()
	wal, err := results.OpenWAL(results.WALConfig{Dir: walDir, Policy: results.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	edge := stack.Collector
	edge.AttachWAL(wal) // WAL observes first: commits are durable before the forwarder sees them
	newForwarder := func(w *results.WAL) *federation.Forwarder {
		f, err := federation.NewForwarder(federation.ForwarderConfig{
			Client: apiclient.NewWithConfig(gate.URL, apiclient.Config{
				Retries: 1, RetryBackoff: time.Millisecond,
			}),
			MaxBatch:      32,
			FlushInterval: 5 * time.Millisecond,
			MaxBuffer:     64, // small enough that the outage forces a spill to the WAL tail
			WAL:           w,
			Logf:          t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f1 := newForwarder(wal)
	edge.Store.AddObserver(f1)

	// Phase 1: upstream reachable; the cursor advances past acknowledged
	// traffic.
	cfg := federationCampaign(phaseVisits)
	stack.Population.RunCampaign(cfg)
	if err := f1.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f1.Stats().AckedCursor == 0 {
		t.Fatal("cursor did not advance during the healthy phase")
	}

	// Phase 2: upstream down; the edge keeps ingesting under the WAL.
	down.Store(true)
	cfg.Start = cfg.Start.Add(cfg.Duration)
	stack.Population.RunCampaign(cfg)
	st := f1.Stats()
	if st.Spilled == 0 {
		t.Fatalf("outage did not spill the %d-slot buffer to the WAL tail: %+v", 64, st)
	}
	if st.Dropped != 0 {
		t.Fatalf("WAL-backed edge dropped %d records during the outage", st.Dropped)
	}

	// Crash: no drain, no final cursor write; the WAL closes like a dead
	// process's file descriptors would.
	f1.Stop()
	edgeCommitted := edge.Store.Len()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	if upStore.Len() >= edgeCommitted {
		t.Fatalf("upstream already complete (%d of %d) — the outage never bit", upStore.Len(), edgeCommitted)
	}

	// Restart: replay the WAL, reopen it, and let a fresh forwarder resume
	// from the cursor file persisted beside it.
	recovered, _, err := results.OpenStoreFromWAL(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Len() != edgeCommitted {
		t.Fatalf("recovered store has %d records, crashed edge had %d", recovered.Len(), edgeCommitted)
	}
	wal2, err := results.OpenWAL(results.WALConfig{Dir: walDir, Policy: results.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	recovered.AddObserver(wal2)
	down.Store(false)
	f2 := newForwarder(wal2)
	recovered.AddObserver(f2)
	if err := f2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}

	// Zero loss: the upstream holds exactly what the edge committed, which
	// is exactly what the never-partitioned baseline stored.
	if upStore.Len() != edgeCommitted {
		t.Fatalf("upstream has %d records after resume, edge committed %d", upStore.Len(), edgeCommitted)
	}
	if upStore.Len() != baseline.Store.Len() {
		t.Fatalf("federated tier has %d records, baseline stored %d", upStore.Len(), baseline.Store.Len())
	}
	for _, f := range []*federation.Forwarder{f1, f2} {
		if st := f.Stats(); st.Dropped != 0 {
			t.Fatalf("forwarder dropped %d records: %+v", st.Dropped, st)
		}
	}

	// Bit-for-bit verdict equality with the single-collector run.
	fedVerdicts := inference.New(inference.DefaultConfig()).DetectIncremental(upAgg)
	if len(fedVerdicts) != len(baseVerdicts) {
		t.Fatalf("federated detection produced %d verdicts, baseline %d", len(fedVerdicts), len(baseVerdicts))
	}
	for i := range baseVerdicts {
		if fedVerdicts[i] != baseVerdicts[i] {
			t.Fatalf("verdict %d diverged after crash-restart:\n baseline: %+v\nfederated: %+v", i, baseVerdicts[i], fedVerdicts[i])
		}
	}
}
